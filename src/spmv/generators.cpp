#include "spmv/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.hpp"

namespace pmove::spmv {

namespace {

/// Deduplicating triplet collector that always includes the diagonal (keeps
/// the symmetrized graph connected enough for BFS orderings).
std::vector<Triplet> with_diagonal(std::vector<Triplet> triplets, int rows) {
  triplets.reserve(triplets.size() + static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r) triplets.push_back({r, r, 4.0});
  return triplets;
}

}  // namespace

Csr make_mesh_matrix(int rows, int avg_degree, int band, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(rows) *
                   static_cast<std::size_t>(avg_degree + 1));
  for (int r = 0; r < rows; ++r) {
    const int degree = std::max(
        1, static_cast<int>(rng.gaussian(avg_degree, avg_degree * 0.25)));
    for (int k = 0; k < degree; ++k) {
      const int offset =
          static_cast<int>(rng.gaussian(0.0, static_cast<double>(band)));
      const int c = std::clamp(r + offset, 0, rows - 1);
      triplets.push_back({r, c, rng.uniform(-1.0, 1.0)});
    }
  }
  auto csr = Csr::from_coo(rows, rows, with_diagonal(std::move(triplets),
                                                     rows));
  return std::move(csr.value());
}

Csr make_stiffness_matrix(int rows, int block, int blocks_coupled,
                          std::uint64_t seed) {
  Rng rng(seed);
  const int block_count = (rows + block - 1) / block;
  std::vector<Triplet> triplets;
  for (int b = 0; b < block_count; ++b) {
    const int begin = b * block;
    const int end = std::min(rows, begin + block);
    // Dense-ish intra-block coupling.
    for (int r = begin; r < end; ++r) {
      for (int c = begin; c < end; ++c) {
        if (r != c && rng.chance(0.65)) {
          triplets.push_back({r, c, rng.uniform(-1.0, 1.0)});
        }
      }
    }
    // Sparse coupling to a few neighbouring blocks.
    for (int nb = 1; nb <= blocks_coupled; ++nb) {
      const int other = b + nb;
      if (other >= block_count) break;
      const int obegin = other * block;
      const int oend = std::min(rows, obegin + block);
      for (int r = begin; r < end; ++r) {
        if (!rng.chance(0.35)) continue;
        const int c =
            static_cast<int>(rng.uniform_int(obegin, oend - 1));
        triplets.push_back({r, c, rng.uniform(-1.0, 1.0)});
        triplets.push_back({c, r, rng.uniform(-1.0, 1.0)});
      }
    }
  }
  auto csr = Csr::from_coo(rows, rows, with_diagonal(std::move(triplets),
                                                     rows));
  return std::move(csr.value());
}

Csr make_powerlaw_matrix(int rows, int avg_degree, double skew,
                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> triplets;
  const double total_edges =
      static_cast<double>(rows) * static_cast<double>(avg_degree);
  // Zipf-ish degree assignment: row i gets degree ~ C / (i+1)^skew.
  double norm = 0.0;
  for (int r = 0; r < rows; ++r) norm += std::pow(r + 1.0, -skew);
  for (int r = 0; r < rows; ++r) {
    const int degree = std::max(
        1, static_cast<int>(total_edges * std::pow(r + 1.0, -skew) / norm));
    for (int k = 0; k < degree; ++k) {
      // Preferential attachment to low indices (the dense core).
      const double u = rng.uniform(0.0, 1.0);
      const int c = std::min(
          rows - 1,
          static_cast<int>(std::pow(u, 1.0 + skew) * rows));
      triplets.push_back({r, c, rng.uniform(-1.0, 1.0)});
    }
  }
  auto csr = Csr::from_coo(rows, rows, with_diagonal(std::move(triplets),
                                                     rows));
  return std::move(csr.value());
}

Expected<Csr> scramble(const Csr& a, int stride) {
  const int n = a.rows();
  if (std::gcd(stride, n) != 1) {
    return Status::invalid_argument(
        "stride must be coprime with the dimension");
  }
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    perm[static_cast<std::size_t>(i)] =
        static_cast<int>((static_cast<std::int64_t>(i) * stride) % n);
  }
  return a.permute_symmetric(perm);
}

Expected<MatrixPreset> matrix_preset(std::string_view name, double scale) {
  auto scaled = [scale](int v) {
    return std::max(64, static_cast<int>(v * scale));
  };
  MatrixPreset preset;
  Csr base;
  if (name == "adaptive") {
    // DIMACS10 mesh: 6.8M rows, deg ~4.
    preset = {"adaptive", "DIMACS10", {}, 6'815'744, 27'200'000};
    base = make_mesh_matrix(scaled(68'000), 4, 8, 11);
  } else if (name == "audikw_1") {
    // GHS_psdef stiffness: 943k rows, deg ~82.
    preset = {"audikw_1", "GHS_psdef", {}, 943'695, 77'700'000};
    base = make_stiffness_matrix(scaled(9'600), 24, 2, 22);
  } else if (name == "dielFilterV3real") {
    // Dziekonski FEM: 1.1M rows, deg ~81.
    preset = {"dielFilterV3real", "Dziekonski", {}, 1'102'824, 89'300'000};
    base = make_stiffness_matrix(scaled(11'000), 20, 3, 33);
  } else if (name == "hugetrace-00020") {
    // DIMACS10 trace: 16M rows, deg ~3.
    preset = {"hugetrace-00020", "DIMACS10", {}, 16'002'413, 48'000'000};
    base = make_mesh_matrix(scaled(160'000), 3, 6, 44);
  } else if (name == "human_gene1") {
    // Belcastro gene network: 22k rows, deg ~1100 (kept at full row count,
    // degree scaled).
    preset = {"human_gene1", "Belcastro", {}, 22'283, 24'700'000};
    base = make_powerlaw_matrix(
        22'283, std::max(8, static_cast<int>(110 * scale)), 0.7, 55);
  } else {
    return Status::not_found("unknown matrix preset: " + std::string(name));
  }
  // The paper's originals are not bandwidth-optimal; scramble moderately so
  // "none" has realistic (poor) locality and RCM has something to recover.
  auto scrambled = scramble(base, 101);
  if (!scrambled) {
    // Fall back to a coprime stride.
    scrambled = scramble(base, 103);
    if (!scrambled) return scrambled.status();
  }
  preset.matrix = std::move(scrambled.value());
  return preset;
}

std::vector<std::string> matrix_preset_names() {
  return {"adaptive", "audikw_1", "dielFilterV3real", "hugetrace-00020",
          "human_gene1"};
}

}  // namespace pmove::spmv
