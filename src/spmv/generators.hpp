// Synthetic sparse-matrix generators.
//
// The paper evaluates on five SuiteSparse matrices (Table IV).  Those files
// are not available offline, so each generator reproduces the structural
// class of its namesake at a scaled dimension: degree profile, bandwidth
// character and locality behaviour under reordering are what Fig 7/8 depend
// on, and those are preserved.  The "original" ordering of each preset is
// deliberately scrambled with a stride permutation so RCM has realistic
// locality to recover (SuiteSparse originals are likewise not
// bandwidth-optimal).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "spmv/csr.hpp"
#include "util/status.hpp"

namespace pmove::spmv {

/// Banded mesh-like matrix: every row has ~avg_degree neighbours within
/// +-band of the diagonal (adaptive / hugetrace class).
Csr make_mesh_matrix(int rows, int avg_degree, int band, std::uint64_t seed);

/// Block-structured stiffness matrix: dense blocks of `block` rows coupled
/// to a few neighbouring blocks (audikw_1 / dielFilter class).
Csr make_stiffness_matrix(int rows, int block, int blocks_coupled,
                          std::uint64_t seed);

/// Power-law matrix with a dense core: few very dense rows, many sparse
/// ones (human_gene1 class).
Csr make_powerlaw_matrix(int rows, int avg_degree, double skew,
                         std::uint64_t seed);

/// Applies a stride permutation p(i) = (i * stride) mod rows symmetric to
/// both sides — destroys banded locality without changing the pattern
/// class.
Expected<Csr> scramble(const Csr& a, int stride);

struct MatrixPreset {
  std::string name;   ///< SuiteSparse name it mirrors
  std::string group;  ///< SuiteSparse group
  Csr matrix;
  std::int64_t paper_rows = 0;  ///< dimensions in the paper's Table IV
  std::int64_t paper_nnz = 0;
};

/// The five Table IV matrices at ~1/100 scale:
///   adaptive, audikw_1, dielFilterV3real, hugetrace-00020, human_gene1.
Expected<MatrixPreset> matrix_preset(std::string_view name,
                                     double scale = 1.0);
std::vector<std::string> matrix_preset_names();

}  // namespace pmove::spmv
