// Compressed Sparse Row matrices.
//
// The substrate for the paper's SpMV evaluation (Section V-D/E): CSR
// storage, COO assembly, symmetric permutation (for reorderings) and the
// structural statistics (bandwidth, degree profile) that explain why
// reordering changes locality.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace pmove::spmv {

struct Triplet {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

class Csr {
 public:
  Csr() = default;
  Csr(int rows, int cols, std::vector<int> row_ptr, std::vector<int> col_idx,
      std::vector<double> values);

  /// Assembles from triplets: sorts, merges duplicates (summing values).
  static Expected<Csr> from_coo(int rows, int cols,
                                std::vector<Triplet> triplets);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] std::int64_t nnz() const {
    return static_cast<std::int64_t>(col_idx_.size());
  }

  [[nodiscard]] const std::vector<int>& row_ptr() const { return row_ptr_; }
  [[nodiscard]] const std::vector<int>& col_idx() const { return col_idx_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  [[nodiscard]] int row_degree(int row) const {
    return row_ptr_[row + 1] - row_ptr_[row];
  }

  /// Mean |col - row| over all entries — the locality proxy reorderings
  /// optimize.
  [[nodiscard]] double mean_bandwidth() const;
  /// Max |col - row|.
  [[nodiscard]] int max_bandwidth() const;
  [[nodiscard]] double avg_degree() const {
    return rows_ == 0 ? 0.0
                      : static_cast<double>(nnz()) / static_cast<double>(rows_);
  }

  /// A[p,p]: row i of the result is row perm[i] of this matrix with columns
  /// relabelled through the inverse permutation.  `perm` must be a
  /// permutation of [0, rows); requires rows == cols.
  [[nodiscard]] Expected<Csr> permute_symmetric(
      const std::vector<int>& perm) const;

  /// Structural check used by tests: row_ptr monotone, indices in range.
  [[nodiscard]] Status validate() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> row_ptr_{0};
  std::vector<int> col_idx_;
  std::vector<double> values_;
};

/// y = A x (reference single-threaded implementation used as the test
/// oracle for the optimized algorithms).
void spmv_reference(const Csr& a, const std::vector<double>& x,
                    std::vector<double>& y);

}  // namespace pmove::spmv
