// SpMV algorithms (paper, Section V-D): a vendor-library-style vectorized
// row kernel ("mkl") and merge-based CSR SpMV (Merrill & Garland).
//
// Both are real implementations operating on real data; instrumented runs
// publish exact operation counts to LiveCounters while executing so the
// live monitoring pipeline observes them.  The vectorized kernel's FLOPs
// are attributed to the widest ISA the target machine supports (AVX-512 on
// the Intel presets) and its memory traffic to correspondingly fewer, wider
// memory instructions — reproducing the Fig 7 contrast: AVX512 FP events
// only during MKL, scalar FP + more memory instructions + more power during
// Merge.
#pragma once

#include <string_view>
#include <vector>

#include "spmv/csr.hpp"
#include "topology/machine.hpp"
#include "util/status.hpp"
#include "workload/activity.hpp"
#include "workload/counter_source.hpp"

namespace pmove::spmv {

enum class Algorithm { kMklLike, kMerge };
std::string_view to_string(Algorithm algorithm);

struct SpmvConfig {
  Algorithm algorithm = Algorithm::kMklLike;
  int threads = 1;
  int iterations = 10;
  /// Instrumentation granularity: progress publications per iteration.
  int chunks_per_iteration = 32;
  /// Logical CPUs the work is attributed to (size >= threads).
  std::vector<int> cpus = {0};
};

struct SpmvRun {
  workload::QuantitySet totals;  ///< exact ground truth
  double seconds = 0.0;
  double checksum = 0.0;

  [[nodiscard]] double gflops() const {
    return seconds > 0.0 ? totals.total_flops() / seconds / 1e9 : 0.0;
  }
};

/// Computes y = A x `iterations` times.  `y` holds the final product.
/// Counts are charged to `live` (when non-null) chunk by chunk while the
/// kernel runs.
Expected<SpmvRun> run_spmv(const Csr& a, const std::vector<double>& x,
                           std::vector<double>& y,
                           const topology::MachineSpec& machine,
                           const SpmvConfig& config,
                           workload::LiveCounters* live = nullptr);

/// Cache-miss probability of the x-vector gathers for a matrix on a
/// machine, per level — the structural locality model behind the RCM
/// speed-up (exposed for tests and ablations).
struct GatherLocality {
  double l1_miss_prob = 0.0;
  double l2_miss_prob = 0.0;
  double l3_miss_prob = 0.0;
};
GatherLocality estimate_gather_locality(const Csr& a,
                                        const topology::MachineSpec& machine);

}  // namespace pmove::spmv
