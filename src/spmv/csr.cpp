#include "spmv/csr.hpp"

#include <algorithm>
#include <cmath>

namespace pmove::spmv {

Csr::Csr(int rows, int cols, std::vector<int> row_ptr,
         std::vector<int> col_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {}

Expected<Csr> Csr::from_coo(int rows, int cols,
                            std::vector<Triplet> triplets) {
  if (rows < 0 || cols < 0) {
    return Status::invalid_argument("negative matrix dimensions");
  }
  for (const auto& t : triplets) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
      return Status::out_of_range(
          "triplet (" + std::to_string(t.row) + "," + std::to_string(t.col) +
          ") outside " + std::to_string(rows) + "x" + std::to_string(cols));
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  std::vector<int> row_ptr(static_cast<std::size_t>(rows) + 1, 0);
  std::vector<int> col_idx;
  std::vector<double> values;
  col_idx.reserve(triplets.size());
  values.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size(); ++i) {
    if (!col_idx.empty() && i > 0 && triplets[i].row == triplets[i - 1].row &&
        triplets[i].col == triplets[i - 1].col) {
      values.back() += triplets[i].value;  // merge duplicates
      continue;
    }
    ++row_ptr[static_cast<std::size_t>(triplets[i].row) + 1];
    col_idx.push_back(triplets[i].col);
    values.push_back(triplets[i].value);
  }
  for (int r = 0; r < rows; ++r) {
    row_ptr[static_cast<std::size_t>(r) + 1] +=
        row_ptr[static_cast<std::size_t>(r)];
  }
  return Csr(rows, cols, std::move(row_ptr), std::move(col_idx),
             std::move(values));
}

double Csr::mean_bandwidth() const {
  if (nnz() == 0) return 0.0;
  double sum = 0.0;
  for (int r = 0; r < rows_; ++r) {
    for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      sum += std::abs(col_idx_[static_cast<std::size_t>(k)] - r);
    }
  }
  return sum / static_cast<double>(nnz());
}

int Csr::max_bandwidth() const {
  int max_bw = 0;
  for (int r = 0; r < rows_; ++r) {
    for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      max_bw = std::max(max_bw,
                        std::abs(col_idx_[static_cast<std::size_t>(k)] - r));
    }
  }
  return max_bw;
}

Expected<Csr> Csr::permute_symmetric(const std::vector<int>& perm) const {
  if (rows_ != cols_) {
    return Status::invalid_argument(
        "symmetric permutation requires a square matrix");
  }
  if (static_cast<int>(perm.size()) != rows_) {
    return Status::invalid_argument("permutation size mismatch");
  }
  std::vector<int> inverse(perm.size(), -1);
  for (int i = 0; i < rows_; ++i) {
    const int p = perm[static_cast<std::size_t>(i)];
    if (p < 0 || p >= rows_ || inverse[static_cast<std::size_t>(p)] != -1) {
      return Status::invalid_argument("perm is not a permutation");
    }
    inverse[static_cast<std::size_t>(p)] = i;
  }
  // Result row i = original row perm[i]; columns relabelled by inverse.
  std::vector<int> row_ptr(static_cast<std::size_t>(rows_) + 1, 0);
  for (int i = 0; i < rows_; ++i) {
    row_ptr[static_cast<std::size_t>(i) + 1] =
        row_ptr[static_cast<std::size_t>(i)] +
        row_degree(perm[static_cast<std::size_t>(i)]);
  }
  std::vector<int> col_idx(static_cast<std::size_t>(nnz()));
  std::vector<double> values(static_cast<std::size_t>(nnz()));
  for (int i = 0; i < rows_; ++i) {
    const int src = perm[static_cast<std::size_t>(i)];
    int out = row_ptr[static_cast<std::size_t>(i)];
    // Gather the relabelled row, then sort by column for CSR canonical form.
    std::vector<std::pair<int, double>> entries;
    entries.reserve(static_cast<std::size_t>(row_degree(src)));
    for (int k = row_ptr_[src]; k < row_ptr_[src + 1]; ++k) {
      entries.emplace_back(
          inverse[static_cast<std::size_t>(
              col_idx_[static_cast<std::size_t>(k)])],
          values_[static_cast<std::size_t>(k)]);
    }
    std::sort(entries.begin(), entries.end());
    for (const auto& [col, value] : entries) {
      col_idx[static_cast<std::size_t>(out)] = col;
      values[static_cast<std::size_t>(out)] = value;
      ++out;
    }
  }
  return Csr(rows_, cols_, std::move(row_ptr), std::move(col_idx),
             std::move(values));
}

Status Csr::validate() const {
  if (static_cast<int>(row_ptr_.size()) != rows_ + 1) {
    return Status::internal("row_ptr size mismatch");
  }
  if (row_ptr_.front() != 0 ||
      row_ptr_.back() != static_cast<int>(col_idx_.size())) {
    return Status::internal("row_ptr endpoints invalid");
  }
  if (col_idx_.size() != values_.size()) {
    return Status::internal("col_idx/values size mismatch");
  }
  for (int r = 0; r < rows_; ++r) {
    if (row_ptr_[r] > row_ptr_[r + 1]) {
      return Status::internal("row_ptr not monotone at row " +
                              std::to_string(r));
    }
  }
  for (int col : col_idx_) {
    if (col < 0 || col >= cols_) {
      return Status::internal("column index out of range: " +
                              std::to_string(col));
    }
  }
  return Status::ok();
}

void spmv_reference(const Csr& a, const std::vector<double>& x,
                    std::vector<double>& y) {
  y.assign(static_cast<std::size_t>(a.rows()), 0.0);
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  for (int r = 0; r < a.rows(); ++r) {
    double sum = 0.0;
    for (int k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      sum += values[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = sum;
  }
}

}  // namespace pmove::spmv
