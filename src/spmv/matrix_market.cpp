#include "spmv/matrix_market.hpp"

#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace pmove::spmv {

Expected<Csr> read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::parse_error("empty Matrix Market stream");
  }
  // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
  auto header = strings::split_trimmed(line, ' ');
  if (header.size() < 5 ||
      strings::to_lower(header[0]) != "%%matrixmarket" ||
      strings::to_lower(header[1]) != "matrix" ||
      strings::to_lower(header[2]) != "coordinate") {
    return Status::parse_error(
        "expected '%%MatrixMarket matrix coordinate ...' header");
  }
  const std::string field = strings::to_lower(header[3]);
  const std::string symmetry = strings::to_lower(header[4]);
  if (field != "real" && field != "integer" && field != "pattern") {
    return Status::unsupported("unsupported MM field type: " + field);
  }
  if (symmetry != "general" && symmetry != "symmetric") {
    return Status::unsupported("unsupported MM symmetry: " + symmetry);
  }
  const bool pattern = field == "pattern";
  const bool symmetric = symmetry == "symmetric";

  // Skip comments, read the size line.
  int rows = 0, cols = 0;
  long long entries = 0;
  while (std::getline(in, line)) {
    std::string_view trimmed = strings::trim(line);
    if (trimmed.empty() || trimmed.front() == '%') continue;
    std::istringstream size_line{std::string(trimmed)};
    if (!(size_line >> rows >> cols >> entries)) {
      return Status::parse_error("malformed MM size line: " + line);
    }
    break;
  }
  if (rows <= 0 || cols <= 0 || entries < 0) {
    return Status::parse_error("invalid MM dimensions");
  }

  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(symmetric ? 2 * entries
                                                      : entries));
  long long seen = 0;
  while (seen < entries && std::getline(in, line)) {
    std::string_view trimmed = strings::trim(line);
    if (trimmed.empty() || trimmed.front() == '%') continue;
    std::istringstream entry{std::string(trimmed)};
    int r = 0, c = 0;
    double value = 1.0;
    if (!(entry >> r >> c)) {
      return Status::parse_error("malformed MM entry: " + line);
    }
    if (!pattern && !(entry >> value)) {
      return Status::parse_error("MM entry missing value: " + line);
    }
    if (r < 1 || r > rows || c < 1 || c > cols) {
      return Status::out_of_range("MM entry index out of bounds: " + line);
    }
    triplets.push_back({r - 1, c - 1, value});
    if (symmetric && r != c) triplets.push_back({c - 1, r - 1, value});
    ++seen;
  }
  if (seen != entries) {
    return Status::parse_error(
        "MM stream ended after " + std::to_string(seen) + " of " +
        std::to_string(entries) + " entries");
  }
  return Csr::from_coo(rows, cols, std::move(triplets));
}

Expected<Csr> read_matrix_market_text(std::string_view text) {
  std::istringstream in{std::string(text)};
  return read_matrix_market(in);
}

Expected<Csr> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::not_found("cannot open " + path);
  return read_matrix_market(in);
}

std::string write_matrix_market(const Csr& matrix,
                                std::string_view comment) {
  std::string out = "%%MatrixMarket matrix coordinate real general\n";
  if (!comment.empty()) {
    out += "% " + std::string(comment) + "\n";
  }
  out += std::to_string(matrix.rows()) + " " + std::to_string(matrix.cols()) +
         " " + std::to_string(matrix.nnz()) + "\n";
  for (int r = 0; r < matrix.rows(); ++r) {
    for (int k = matrix.row_ptr()[r]; k < matrix.row_ptr()[r + 1]; ++k) {
      out += std::to_string(r + 1) + " " +
             std::to_string(matrix.col_idx()[static_cast<std::size_t>(k)] +
                            1) +
             " " +
             strings::format_double(
                 matrix.values()[static_cast<std::size_t>(k)], 12) +
             "\n";
    }
  }
  return out;
}

Status write_matrix_market_file(const Csr& matrix, const std::string& path,
                                std::string_view comment) {
  std::ofstream out(path);
  if (!out) return Status::unavailable("cannot write " + path);
  out << write_matrix_market(matrix, comment);
  return out.good() ? Status::ok()
                    : Status::unavailable("write failed: " + path);
}

}  // namespace pmove::spmv
