#include "spmv/reorder.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/rng.hpp"

namespace pmove::spmv {

namespace {

/// Symmetrized adjacency (A | A^T) without self loops, CSR-like arrays.
struct Adjacency {
  std::vector<int> offsets;
  std::vector<int> neighbors;

  [[nodiscard]] int degree(int v) const { return offsets[v + 1] - offsets[v]; }
};

Adjacency symmetrize(const Csr& a) {
  const int n = a.rows();
  std::vector<int> counts(static_cast<std::size_t>(n) + 1, 0);
  auto count_edge = [&counts](int u, int v) {
    if (u != v) {
      ++counts[static_cast<std::size_t>(u) + 1];
      ++counts[static_cast<std::size_t>(v) + 1];
    }
  };
  for (int r = 0; r < n; ++r) {
    for (int k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
      count_edge(r, a.col_idx()[static_cast<std::size_t>(k)]);
    }
  }
  Adjacency adj;
  adj.offsets.resize(static_cast<std::size_t>(n) + 1, 0);
  for (int v = 0; v < n; ++v) {
    adj.offsets[static_cast<std::size_t>(v) + 1] =
        adj.offsets[static_cast<std::size_t>(v)] +
        counts[static_cast<std::size_t>(v) + 1];
  }
  adj.neighbors.resize(static_cast<std::size_t>(adj.offsets.back()));
  std::vector<int> cursor(adj.offsets.begin(), adj.offsets.end() - 1);
  for (int r = 0; r < n; ++r) {
    for (int k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
      const int c = a.col_idx()[static_cast<std::size_t>(k)];
      if (r == c) continue;
      adj.neighbors[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(r)]++)] = c;
      adj.neighbors[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(c)]++)] = r;
    }
  }
  // Deduplicate each vertex's neighbour list (A and A^T may both contain an
  // edge).
  std::vector<int> dedup_offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<int> dedup;
  dedup.reserve(adj.neighbors.size());
  for (int v = 0; v < n; ++v) {
    auto begin = adj.neighbors.begin() + adj.offsets[v];
    auto end = adj.neighbors.begin() + adj.offsets[v + 1];
    std::sort(begin, end);
    auto unique_end = std::unique(begin, end);
    dedup.insert(dedup.end(), begin, unique_end);
    dedup_offsets[static_cast<std::size_t>(v) + 1] =
        static_cast<int>(dedup.size());
  }
  adj.offsets = std::move(dedup_offsets);
  adj.neighbors = std::move(dedup);
  return adj;
}

/// BFS from `start`; returns the vertex order and writes the last-level
/// frontier start into `last_level_vertex` (an approximate peripheral
/// vertex).
std::vector<int> bfs_order(const Adjacency& adj, int start,
                           std::vector<char>& visited,
                           int* last_level_vertex) {
  std::vector<int> order;
  std::queue<int> queue;
  queue.push(start);
  visited[static_cast<std::size_t>(start)] = 1;
  int last = start;
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop();
    order.push_back(v);
    last = v;
    // Visit neighbours in increasing-degree order (Cuthill-McKee rule).
    std::vector<int> next(adj.neighbors.begin() + adj.offsets[v],
                          adj.neighbors.begin() + adj.offsets[v + 1]);
    std::sort(next.begin(), next.end(), [&adj](int x, int y) {
      const int dx = adj.degree(x), dy = adj.degree(y);
      return dx != dy ? dx < dy : x < y;
    });
    for (int u : next) {
      if (!visited[static_cast<std::size_t>(u)]) {
        visited[static_cast<std::size_t>(u)] = 1;
        queue.push(u);
      }
    }
  }
  *last_level_vertex = last;
  return order;
}

}  // namespace

std::vector<int> rcm_order(const Csr& a) {
  const int n = a.rows();
  const Adjacency adj = symmetrize(a);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  for (int seed = 0; seed < n; ++seed) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    // Pseudo-peripheral start: BFS twice — the far end of the first BFS is
    // a better start than an arbitrary vertex.
    int far = seed;
    {
      std::vector<char> scratch(static_cast<std::size_t>(n), 0);
      // Only explore this component; mark scratch visits.
      (void)bfs_order(adj, seed, scratch, &far);
    }
    int unused = far;
    auto component = bfs_order(adj, far, visited, &unused);
    order.insert(order.end(), component.begin(), component.end());
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<int> degree_order(const Csr& a) {
  std::vector<int> perm(static_cast<std::size_t>(a.rows()));
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&a](int x, int y) {
    return a.row_degree(x) < a.row_degree(y);
  });
  return perm;
}

std::vector<int> random_order(int rows, std::uint64_t seed) {
  std::vector<int> perm(static_cast<std::size_t>(rows));
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng.engine());
  return perm;
}

std::vector<int> identity_order(int rows) {
  std::vector<int> perm(static_cast<std::size_t>(rows));
  std::iota(perm.begin(), perm.end(), 0);
  return perm;
}

Expected<std::vector<int>> order_by_name(const Csr& a, std::string_view name,
                                         std::uint64_t seed) {
  if (name == "none") return identity_order(a.rows());
  if (name == "rcm") return rcm_order(a);
  if (name == "degree") return degree_order(a);
  if (name == "random") return random_order(a.rows(), seed);
  return Status::not_found("unknown ordering: " + std::string(name));
}

}  // namespace pmove::spmv
