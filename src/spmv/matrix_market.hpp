// Matrix Market (.mtx) I/O.
//
// The paper evaluates on SuiteSparse matrices distributed in Matrix Market
// format; this reader lets the real files drop into the SpMV pipeline when
// they are available, and the writer round-trips the synthetic generators
// for external tools.  Supported: `matrix coordinate real|integer|pattern
// general|symmetric` (the SuiteSparse common cases).
#pragma once

#include <iosfwd>
#include <string>

#include "spmv/csr.hpp"
#include "util/status.hpp"

namespace pmove::spmv {

/// Parses Matrix Market text.  Symmetric matrices are expanded (both
/// triangles materialized); pattern matrices get value 1.0 per entry.
Expected<Csr> read_matrix_market(std::istream& in);
Expected<Csr> read_matrix_market_text(std::string_view text);
Expected<Csr> read_matrix_market_file(const std::string& path);

/// Writes `coordinate real general` with 1-based indices.
std::string write_matrix_market(const Csr& matrix,
                                std::string_view comment = "");
Status write_matrix_market_file(const Csr& matrix, const std::string& path,
                                std::string_view comment = "");

}  // namespace pmove::spmv
