#include "spmv/algorithms.hpp"

#ifdef __AVX512F__
#include <immintrin.h>
// gcc's unmasked-gather intrinsic expands through a masked builtin whose
// pass-through register is intentionally uninitialized; silence the
// resulting false-positive -Wmaybe-uninitialized from the intrinsic header.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <algorithm>
#include <chrono>
#include <mutex>
#include <cmath>
#include <thread>

#include "workload/power_model.hpp"

namespace pmove::spmv {

using workload::LiveCounters;
using workload::Quantity;
using workload::QuantitySet;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline void do_not_optimize(double& value) { asm volatile("" : "+x"(value)); }

/// Ground-truth charge for one chunk of SpMV work.
struct ChunkCharger {
  const topology::MachineSpec* machine;
  GatherLocality locality;
  bool vectorized;      ///< wide-ISA kernel (mkl-like)
  int vector_width = 8; ///< doubles per vector instruction
  int cpu = 0;

  void charge(QuantitySet* totals, LiveCounters* live, double nnz,
              double rows, double seconds) const {
    const double flops = 2.0 * nnz;
    double loads;      // memory instructions, not bytes
    double stores;
    Quantity flop_quantity;
    if (vectorized) {
      const double w = static_cast<double>(vector_width);
      // Wide loads for values+columns, one gather instruction per vector of
      // x elements, scalar row-pointer reads.
      loads = 2.0 * nnz / w + nnz / w + rows;
      stores = rows / w;
      flop_quantity = machine->isa.avx512 > 0.0 ? Quantity::kAvx512Flops
                                                : Quantity::kAvx2Flops;
    } else {
      loads = 3.0 * nnz + rows;  // value, column, x per element + row_ptr
      stores = rows;
      flop_quantity = Quantity::kScalarFlops;
    }
    const double flop_instructions =
        vectorized ? flops / vector_width : flops;
    const double branches = vectorized ? nnz / vector_width + rows
                                       : nnz + rows;
    const double instructions =
        flop_instructions + loads + stores + 2.0 * branches;
    const double cycles = seconds * machine->base_ghz * 1e9;

    // Bytes actually moved: streaming arrays + gathered x lines.
    const double streamed_bytes = nnz * 12.0 + rows * 12.0;  // vals+cols+ptr+y
    const double gather_l1_misses = nnz * locality.l1_miss_prob;
    const double l1_miss = streamed_bytes / 64.0 + gather_l1_misses;
    const double l2_miss = streamed_bytes / 64.0 + nnz * locality.l2_miss_prob;
    const double l3_miss =
        streamed_bytes / 64.0 * 0.9 + nnz * locality.l3_miss_prob;

    const auto& power = workload::default_power_model();
    const double moved_bytes = streamed_bytes + gather_l1_misses * 64.0;
    const double energy =
        power.chunk_energy(vectorized ? 0.0 : flops,
                           vectorized ? flops : 0.0, moved_bytes, seconds);

    auto add = [&](Quantity q, double v) {
      totals->add(q, v);
      if (live != nullptr) live->add(q, cpu, v);
    };
    add(flop_quantity, flops);
    add(Quantity::kLoads, loads);
    add(Quantity::kStores, stores);
    add(Quantity::kBranches, branches);
    add(Quantity::kBranchMisses, branches * 0.01);
    add(Quantity::kInstructions, instructions);
    add(Quantity::kUops, instructions * 1.3);
    add(Quantity::kCycles, cycles);
    add(Quantity::kL1Miss, l1_miss);
    add(Quantity::kL2Miss, l2_miss);
    add(Quantity::kL3Miss, l3_miss);
    add(Quantity::kL3Access, l2_miss);
    add(Quantity::kEnergyPkgJoules, energy);
    add(Quantity::kEnergyDramJoules,
        l3_miss * 64.0 * power.dram_joules_per_byte);
  }
};

// ---------------------------------------------------------------- mkl-like

/// Row-parallel kernel in the shape a vendor library ships: a genuine
/// AVX-512 gather + FMA inner loop when the build machine supports it,
/// otherwise an unrolled multi-accumulator loop the compiler can vectorize.
double mkl_like_rows(const Csr& a, const std::vector<double>& x,
                     std::vector<double>& y, int row_begin, int row_end) {
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  double guard = 0.0;
#ifdef __AVX512F__
  for (int r = row_begin; r < row_end; ++r) {
    const int begin = row_ptr[r], end = row_ptr[r + 1];
    int k = begin;
    double sum = 0.0;
    if (end - begin >= 8) {  // short rows skip the vector setup entirely
      __m512d acc = _mm512_setzero_pd();
      for (; k + 8 <= end; k += 8) {
        const __m256i cols = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(&col_idx[k]));
        const __m512d vals = _mm512_loadu_pd(&values[k]);
        const __m512d gathered = _mm512_i32gather_pd(cols, x.data(), 8);
        acc = _mm512_fmadd_pd(vals, gathered, acc);
      }
      sum = _mm512_reduce_add_pd(acc);
    }
    for (; k < end; ++k) {
      sum += values[k] * x[static_cast<std::size_t>(col_idx[k])];
    }
    y[static_cast<std::size_t>(r)] = sum;
  }
#else
  for (int r = row_begin; r < row_end; ++r) {
    const int begin = row_ptr[r], end = row_ptr[r + 1];
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    int k = begin;
    for (; k + 4 <= end; k += 4) {
      s0 += values[k] * x[static_cast<std::size_t>(col_idx[k])];
      s1 += values[k + 1] * x[static_cast<std::size_t>(col_idx[k + 1])];
      s2 += values[k + 2] * x[static_cast<std::size_t>(col_idx[k + 2])];
      s3 += values[k + 3] * x[static_cast<std::size_t>(col_idx[k + 3])];
    }
    for (; k < end; ++k) {
      s0 += values[k] * x[static_cast<std::size_t>(col_idx[k])];
    }
    y[static_cast<std::size_t>(r)] = (s0 + s1) + (s2 + s3);
  }
#endif
  if (row_end > row_begin) guard = y[static_cast<std::size_t>(row_begin)];
  do_not_optimize(guard);
  return guard;
}

// ------------------------------------------------------------------ merge

/// Merge-path coordinate: `row` rows and `nz` nonzeros consumed.
struct Coord {
  int row;
  int nz;
};

Coord merge_path_search(int diagonal, const std::vector<int>& row_end,
                        int rows, std::int64_t nnz) {
  int lo = std::max(0, diagonal - static_cast<int>(nnz));
  int hi = std::min(diagonal, rows);
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    // A[mid] = row_end[mid]; B[diagonal - 1 - mid] = diagonal - 1 - mid.
    if (row_end[static_cast<std::size_t>(mid)] <= diagonal - 1 - mid) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {lo, diagonal - lo};
}

struct MergeCarry {
  int row = -1;
  double partial = 0.0;
};

/// Processes merge-path segment [d0, d1); rows fully contained are written
/// to y, the trailing partial row is returned as a carry to fix up later.
MergeCarry merge_segment(const Csr& a, const std::vector<double>& x,
                         std::vector<double>& y,
                         const std::vector<int>& row_end, int d0, int d1) {
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  const Coord start = merge_path_search(d0, row_end, a.rows(), a.nnz());
  const Coord stop = merge_path_search(d1, row_end, a.rows(), a.nnz());
  int row = start.row;
  int nz = start.nz;
  double sum = 0.0;
  for (; row < stop.row; ++row) {
    for (; nz < row_end[static_cast<std::size_t>(row)]; ++nz) {
      sum += values[static_cast<std::size_t>(nz)] *
             x[static_cast<std::size_t>(
                 col_idx[static_cast<std::size_t>(nz)])];
    }
    y[static_cast<std::size_t>(row)] = sum;
    sum = 0.0;
  }
  for (; nz < stop.nz; ++nz) {  // partial tail row
    sum += values[static_cast<std::size_t>(nz)] *
           x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(nz)])];
  }
  return {row < a.rows() ? row : -1, sum};
}

}  // namespace

std::string_view to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kMklLike: return "mkl";
    case Algorithm::kMerge: return "merge";
  }
  return "mkl";
}

GatherLocality estimate_gather_locality(
    const Csr& a, const topology::MachineSpec& machine) {
  // The working span touched by gathers of one row neighbourhood is
  // ~2 x mean bandwidth x 8 bytes; a level whose capacity is below the span
  // misses proportionally.  This is the standard reuse-distance argument
  // for banded matrices.
  const double span_bytes = std::max(64.0, 2.0 * a.mean_bandwidth() * 8.0);
  GatherLocality locality;
  auto miss_prob = [span_bytes](double level_bytes) {
    if (span_bytes <= level_bytes) return 0.0;
    return std::min(1.0, 1.0 - level_bytes / span_bytes);
  };
  for (const auto& level : machine.cache_levels) {
    if (level.name == "L1") {
      locality.l1_miss_prob =
          miss_prob(static_cast<double>(level.size_bytes));
    } else if (level.name == "L2") {
      locality.l2_miss_prob =
          miss_prob(static_cast<double>(level.size_bytes));
    } else if (level.name == "L3") {
      locality.l3_miss_prob =
          miss_prob(static_cast<double>(level.size_bytes));
    }
  }
  return locality;
}

Expected<SpmvRun> run_spmv(const Csr& a, const std::vector<double>& x,
                           std::vector<double>& y,
                           const topology::MachineSpec& machine,
                           const SpmvConfig& config, LiveCounters* live) {
  if (static_cast<int>(x.size()) != a.cols()) {
    return Status::invalid_argument("x size does not match matrix columns");
  }
  if (config.threads < 1) {
    return Status::invalid_argument("threads must be >= 1");
  }
  if (static_cast<int>(config.cpus.size()) < config.threads) {
    return Status::invalid_argument("need one attribution CPU per thread");
  }
  y.assign(static_cast<std::size_t>(a.rows()), 0.0);

  SpmvRun run;
  ChunkCharger charger;
  charger.machine = &machine;
  charger.locality = estimate_gather_locality(a, machine);
  charger.vectorized = config.algorithm == Algorithm::kMklLike;
  charger.vector_width = machine.isa.avx512 > 0.0 ? 8 : 4;

  std::vector<int> row_end(a.row_ptr().begin() + 1, a.row_ptr().end());

  std::mutex totals_mutex;
  const double t_start = now_seconds();
  for (int iter = 0; iter < config.iterations; ++iter) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(config.threads));
    std::vector<MergeCarry> carries(
        static_cast<std::size_t>(config.threads) *
        static_cast<std::size_t>(config.chunks_per_iteration));
    for (int t = 0; t < config.threads; ++t) {
      workers.emplace_back([&, t] {
        ChunkCharger local_charger = charger;
        local_charger.cpu = config.cpus[static_cast<std::size_t>(t)];
        QuantitySet local_totals;
        double local_checksum = 0.0;
        const int chunks = std::max(1, config.chunks_per_iteration);
        if (config.algorithm == Algorithm::kMklLike) {
          const int rows_per_thread =
              (a.rows() + config.threads - 1) / config.threads;
          const int begin = t * rows_per_thread;
          const int end = std::min(a.rows(), begin + rows_per_thread);
          const int step = std::max(1, (end - begin + chunks - 1) / chunks);
          for (int r = begin; r < end; r += step) {
            const int stop = std::min(end, r + step);
            const double c0 = now_seconds();
            local_checksum += mkl_like_rows(a, x, y, r, stop);
            const double c1 = now_seconds();
            const double nnz_chunk = static_cast<double>(
                a.row_ptr()[stop] - a.row_ptr()[r]);
            local_charger.charge(&local_totals, live, nnz_chunk,
                                 static_cast<double>(stop - r), c1 - c0);
          }
        } else {
          const int total_work = a.rows() + static_cast<int>(a.nnz());
          const int work_per_thread =
              (total_work + config.threads - 1) / config.threads;
          const int seg_begin = std::min(total_work, t * work_per_thread);
          const int seg_end =
              std::min(total_work, seg_begin + work_per_thread);
          const int step =
              std::max(1, (seg_end - seg_begin + chunks - 1) / chunks);
          int chunk_index = 0;
          for (int d = seg_begin; d < seg_end; d += step, ++chunk_index) {
            const int stop = std::min(seg_end, d + step);
            const double c0 = now_seconds();
            MergeCarry carry =
                merge_segment(a, x, y, row_end, d, stop);
            const double c1 = now_seconds();
            carries[static_cast<std::size_t>(t) *
                        static_cast<std::size_t>(chunks) +
                    static_cast<std::size_t>(
                        std::min(chunk_index, chunks - 1))] = carry;
            const double work = static_cast<double>(stop - d);
            // Work items split ~ nnz/(rows+nnz) nonzeros.
            const double nnz_chunk =
                work * static_cast<double>(a.nnz()) /
                static_cast<double>(std::max(1, total_work));
            local_charger.charge(&local_totals, live, nnz_chunk,
                                 work - nnz_chunk, c1 - c0);
          }
        }
        std::lock_guard<std::mutex> lock(totals_mutex);
        run.totals += local_totals;
        run.checksum += local_checksum;
      });
    }
    for (auto& worker : workers) worker.join();
    // Fix up partial rows left at chunk boundaries by the merge kernel.
    if (config.algorithm == Algorithm::kMerge) {
      for (const auto& carry : carries) {
        if (carry.row >= 0) {
          y[static_cast<std::size_t>(carry.row)] += carry.partial;
        }
      }
    }
  }
  run.seconds = now_seconds() - t_start;
  return run;
}

}  // namespace pmove::spmv
