#include "metrics/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pmove::metrics {

void Gauge::set_max(double v) {
  std::uint64_t seen = bits_.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(seen) < v &&
         !bits_.compare_exchange_weak(seen, std::bit_cast<std::uint64_t>(v),
                                      std::memory_order_relaxed)) {
  }
}

int Histogram::bucket_for(double v) {
  if (!(v >= 1.0)) return 0;  // <1, zero, negative and NaN all land here
  int exp = 0;
  (void)std::frexp(v, &exp);  // v = m * 2^exp with m in [0.5, 1)
  return std::clamp(exp, 1, kBuckets - 1);
}

void Histogram::record(double v) {
  buckets_[static_cast<std::size_t>(bucket_for(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      seen, std::bit_cast<std::uint64_t>(std::bit_cast<double>(seen) + v),
      std::memory_order_relaxed)) {
  }
}

double Histogram::quantile(double q) const {
  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    total += counts[static_cast<std::size_t>(i)];
  }
  if (total == 0) return 0.0;
  const double rank = std::clamp(q, 0.0, 1.0) * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[static_cast<std::size_t>(i)];
    if (static_cast<double>(seen) >= rank) {
      if (i == 0) return 0.5;  // midpoint of [0, 1)
      // Geometric midpoint of [2^(i-1), 2^i).
      return std::ldexp(1.5, i - 1);
    }
  }
  return std::ldexp(1.0, kBuckets - 1);
}

namespace {

template <typename T>
T& lookup(std::mutex& mutex,
          std::map<std::tuple<std::string, std::string, std::string>,
                   std::unique_ptr<T>>& table,
          std::string_view measurement, std::string_view instance,
          std::string_view field) {
  std::lock_guard<std::mutex> lock(mutex);
  auto key = std::make_tuple(std::string(measurement), std::string(instance),
                             std::string(field));
  auto it = table.find(key);
  if (it == table.end()) {
    it = table.emplace(std::move(key), std::make_unique<T>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& Registry::counter(std::string_view measurement,
                           std::string_view instance,
                           std::string_view field) {
  return lookup(mutex_, counters_, measurement, instance, field);
}

Gauge& Registry::gauge(std::string_view measurement,
                       std::string_view instance, std::string_view field) {
  return lookup(mutex_, gauges_, measurement, instance, field);
}

Histogram& Registry::histogram(std::string_view measurement,
                               std::string_view instance,
                               std::string_view field) {
  return lookup(mutex_, histograms_, measurement, instance, field);
}

std::vector<Sample> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Sample> out;
  out.reserve(counters_.size() + gauges_.size() + 3 * histograms_.size());
  for (const auto& [key, counter] : counters_) {
    out.push_back({std::get<0>(key), std::get<1>(key), std::get<2>(key),
                   static_cast<double>(counter->value())});
  }
  for (const auto& [key, gauge] : gauges_) {
    out.push_back({std::get<0>(key), std::get<1>(key), std::get<2>(key),
                   gauge->value()});
  }
  for (const auto& [key, histogram] : histograms_) {
    const auto& [measurement, instance, field] = key;
    out.push_back({measurement, instance, field + "_p50", histogram->p50()});
    out.push_back({measurement, instance, field + "_p99", histogram->p99()});
    out.push_back({measurement, instance, field + "_count",
                   static_cast<double>(histogram->count())});
  }
  std::sort(out.begin(), out.end(), [](const Sample& a, const Sample& b) {
    return std::tie(a.measurement, a.instance, a.field) <
           std::tie(b.measurement, b.instance, b.field);
  });
  return out;
}

std::string Registry::render() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-16s %-20s %-28s %14s\n", "measurement",
                "instance", "field", "value");
  out += line;
  for (const Sample& sample : snapshot()) {
    std::snprintf(line, sizeof(line), "%-16s %-20s %-28s %14.0f\n",
                  sample.measurement.c_str(), sample.instance.c_str(),
                  sample.field.c_str(), sample.value);
    out += line;
  }
  return out;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: alive at exit
  return *instance;
}

}  // namespace pmove::metrics
