// Lock-cheap introspection registry: the monitoring pipeline's own counters.
//
// Components acquire metric handles by (measurement, instance, field) name —
// a mutex-guarded map lookup paid once, at registration — and then update
// them with single relaxed atomic operations on the hot path.  A periodic
// MetricsExporter (exporter.hpp) snapshots the registry and writes the
// values as pmove_* measurements through the normal PointSink path, so the
// dashboards that watch the cluster can watch the watcher too (DCDB
// Wintermute treats monitoring-stack health as first-class telemetry; so do
// we).
//
// Consistency model: every value is a single word read/written with relaxed
// atomics.  A snapshot taken while writers are running sees, per metric, a
// value that some writer actually produced — never a torn word — and
// counters are monotonic, so consecutive snapshots never go backwards
// (metrics_test.cpp pins this under TSan).  No cross-metric atomicity is
// promised; self-telemetry does not need it.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

namespace pmove::metrics {

/// Monotonic counter.  add() is one relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (queue depth, breaker state).  set() is one relaxed
/// store of the double's bit pattern.
class Gauge {
 public:
  void set(double v) {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  /// set(max(current, v)) — for high-water marks under concurrent writers.
  void set_max(double v);
  [[nodiscard]] double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> bits_{0};  // bit pattern of 0.0
};

/// Fixed log2-bucket histogram: bucket i counts values in [2^(i-1), 2^i)
/// (bucket 0 takes everything < 1).  64 buckets cover the full positive
/// double range that matters for durations-in-ns and sizes; record() is two
/// relaxed fetch_adds plus a CAS loop for the running sum.  Quantiles are
/// read from the bucket counts with geometric interpolation — coarse
/// (factor-of-two) but allocation-free and mergeable.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(double v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }
  /// Value at quantile q in [0,1] (0.5 = p50); 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.5); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

 private:
  static int bucket_for(double v);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};
};

/// One exported value: where it goes (measurement + instance tag + field
/// name) and what it currently reads.  Histograms expand to three samples
/// (<field>_p50, <field>_p99, <field>_count).
struct Sample {
  std::string measurement;
  std::string instance;
  std::string field;
  double value = 0.0;
};

class Registry {
 public:
  /// Handles are valid for the registry's lifetime; repeated calls with the
  /// same names return the same object, so concurrent components share one
  /// counter per name.
  Counter& counter(std::string_view measurement, std::string_view instance,
                   std::string_view field);
  Gauge& gauge(std::string_view measurement, std::string_view instance,
               std::string_view field);
  Histogram& histogram(std::string_view measurement,
                       std::string_view instance, std::string_view field);

  /// All current values, ordered by (measurement, instance, field).
  [[nodiscard]] std::vector<Sample> snapshot() const;

  /// Fixed-width table for the CLI (`pmove metrics`).
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t size() const;

  /// The process-wide registry every instrumented component reports into.
  static Registry& global();

 private:
  using Key = std::tuple<std::string, std::string, std::string>;

  mutable std::mutex mutex_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace pmove::metrics
