// Self-telemetry measurement names (one constant per exported measurement).
//
// Every measurement the introspection registry exports through the
// MetricsExporter is named here and nowhere else, so the docs checker
// (tools/check_docs.sh) can diff this list against docs/METRICS.md and CI
// fails when a new measurement ships undocumented.
#pragma once

namespace pmove::metrics {

/// Ingest tier: per-engine and per-shard queue/drop/spill/park counters
/// (also emitted directly by IngestEngine::publish_self_telemetry).
inline constexpr char kMeasurementIngest[] = "pmove_ingest";
/// Write-ahead log: appends, fsyncs, rollbacks, checkpoints, checkpoint lag.
inline constexpr char kMeasurementWal[] = "pmove_wal";
/// Circuit breakers: state transitions, rejects, outcome counters, keyed by
/// breaker name ("ingest.shard0", "ingest.wal", "docdb", ...).
inline constexpr char kMeasurementBreaker[] = "pmove_breaker";
/// HealthRegistry: failures / supervised restarts / state per component.
inline constexpr char kMeasurementHealth[] = "pmove_health";
/// Query engine: query counts, result-cache hit/miss/evictions, pushdowns.
inline constexpr char kMeasurementQuery[] = "pmove_query";
/// Fault injection: trigger/fire counters per armed point.
inline constexpr char kMeasurementFault[] = "pmove_fault";
/// Document store: insert/upsert outcomes behind its retry/breaker tier.
inline constexpr char kMeasurementDocdb[] = "pmove_docdb";
/// Columnar storage engine: series/point counts, tag-dictionary size,
/// resident column bytes (TimeSeriesDb::set_telemetry_instance).
inline constexpr char kMeasurementTsdb[] = "pmove_tsdb";
/// Fleet execution tier: routed writes, scatter/gather outcomes, degraded
/// queries, gossip rounds, node liveness (Fleet::publish_self_telemetry).
inline constexpr char kMeasurementFleet[] = "pmove_fleet";

/// `instance` tag key on every exported point (which breaker, which shard,
/// which health component the fields belong to).
inline constexpr char kInstanceTag[] = "instance";
/// `tier` tag value marking self-telemetry points.
inline constexpr char kTierTag[] = "self";

/// Tag of the ObservationInterface the daemon registers for its own
/// telemetry streams; ViewBuilder::internals_view() builds the "P-MoVE
/// internals" dashboard from it.
inline constexpr char kSelfObservationTag[] = "pmove-internals";

/// Breaker/health state gauges encode their enum numerically:
///   breaker: 0 = closed, 1 = open, 2 = half-open
///   health:  0 = healthy, 1 = degraded, 2 = failed
inline constexpr char kFieldState[] = "state";

}  // namespace pmove::metrics
