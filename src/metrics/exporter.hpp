// Periodic registry -> PointSink exporter ("watch the watcher").
//
// Snapshots a metrics::Registry and writes one tsdb::Point per
// (measurement, instance) group — tagged instance=<instance>, tier=self —
// through whatever PointSink the daemon already writes telemetry to (the
// ingest engine when enabled, the TSDB directly otherwise).  The exported
// measurements (pmove_breaker, pmove_health, ...) then behave exactly like
// hardware telemetry: queryable, dashboardable, retained, downsampled.
//
// Kept in its own library (pmove_metrics_export) so the registry itself
// stays dependency-free: pmove_util links the registry for breaker/health
// instrumentation while the exporter links pmove_tsdb — no cycle.
#pragma once

#include <cstdint>

#include "metrics/registry.hpp"
#include "tsdb/sink.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace pmove::metrics {

struct ExporterOptions {
  /// Cadence for export_if_due(); export_once() ignores it.
  TimeNs interval_ns = kNsPerSec;
};

class MetricsExporter {
 public:
  /// Neither pointer is owned; both must outlive the exporter.  `registry`
  /// may be nullptr for Registry::global().
  MetricsExporter(Registry* registry, tsdb::PointSink* sink,
                  ExporterOptions options = {});

  /// Snapshots the registry and writes the grouped points stamped `now`.
  Status export_once(TimeNs now);

  /// Cadence-gated export: no-op (ok) until `interval_ns` has elapsed since
  /// the last export.  Drive it from any periodic loop.
  Status export_if_due(TimeNs now);

  [[nodiscard]] std::uint64_t exports() const { return exports_; }
  [[nodiscard]] std::uint64_t points_written() const {
    return points_written_;
  }

 private:
  Registry* registry_;
  tsdb::PointSink* sink_;
  ExporterOptions options_;
  TimeNs last_export_ = 0;
  bool exported_once_ = false;
  std::uint64_t exports_ = 0;
  std::uint64_t points_written_ = 0;
};

}  // namespace pmove::metrics
