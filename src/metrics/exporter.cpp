#include "metrics/exporter.hpp"

#include <map>
#include <utility>

#include "metrics/names.hpp"
#include "tsdb/db.hpp"

namespace pmove::metrics {

MetricsExporter::MetricsExporter(Registry* registry, tsdb::PointSink* sink,
                                 ExporterOptions options)
    : registry_(registry != nullptr ? registry : &Registry::global()),
      sink_(sink),
      options_(options) {}

Status MetricsExporter::export_once(TimeNs now) {
  if (sink_ == nullptr) return Status::unavailable("exporter has no sink");
  const std::vector<Sample> samples = registry_->snapshot();
  std::map<std::pair<std::string, std::string>, tsdb::Point> grouped;
  for (const Sample& sample : samples) {
    tsdb::Point& point = grouped[{sample.measurement, sample.instance}];
    if (point.measurement.empty()) {
      point.measurement = sample.measurement;
      point.tags["tier"] = kTierTag;
      if (!sample.instance.empty()) {
        point.tags[kInstanceTag] = sample.instance;
      }
      point.time = now;
    }
    point.fields[sample.field] = sample.value;
  }
  if (grouped.empty()) return Status::ok();
  std::vector<tsdb::Point> batch;
  batch.reserve(grouped.size());
  for (auto& [key, point] : grouped) batch.push_back(std::move(point));
  const std::size_t n = batch.size();
  if (Status s = sink_->write_batch(std::move(batch)); !s.is_ok()) return s;
  ++exports_;
  points_written_ += n;
  last_export_ = now;
  exported_once_ = true;
  return Status::ok();
}

Status MetricsExporter::export_if_due(TimeNs now) {
  if (exported_once_ && now - last_export_ < options_.interval_ns) {
    return Status::ok();
  }
  return export_once(now);
}

}  // namespace pmove::metrics
