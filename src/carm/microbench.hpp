// CARM microbenchmarks (paper, Section IV-B.1).
//
// Two modes:
//  - *machine mode*: analytic measurement of a target MachineSpec — the
//    spec's sustainable bandwidths/peaks perturbed by a seeded measurement
//    noise, standing in for running the x86-assembly microbenchmarks on the
//    (unavailable) target hardware.  "Thanks to KB, CARM microbenchmarks
//    are automatically configured for a target system, taking into account
//    cache sizes and available ISAs."
//  - *host mode*: real microbenchmarks on the machine this process runs on
//    (TSC-style timing of streaming sweeps sized per cache level and an FMA
//    chain for peak throughput).
//
// Both produce BenchmarkInterface entries for the KB so the CARM plot can
// be reconstructed later without re-running.
#pragma once

#include <vector>

#include "carm/model.hpp"
#include "kb/kb.hpp"
#include "topology/machine.hpp"
#include "util/status.hpp"

namespace pmove::carm {

struct MicrobenchOptions {
  topology::Isa isa = topology::Isa::kScalar;
  int threads = 1;
  std::uint64_t seed = 2024;     ///< machine-mode measurement noise seed
  double noise_rel_sigma = 0.02; ///< +-2% run-to-run variation
};

/// Machine mode: "runs" the microbenchmark campaign against a spec.
Expected<CarmModel> run_carm_machine_mode(const topology::MachineSpec& machine,
                                          const MicrobenchOptions& options);

/// Host mode: genuinely measures the local machine.  `bytes_per_level`
/// chooses the working-set sizes; defaults to 16KB/256KB/4MB/64MB sweeps.
struct HostMicrobenchResult {
  CarmModel model;
  std::vector<double> working_sets;  ///< bytes per measured level
};
Expected<HostMicrobenchResult> run_carm_host_mode(
    std::vector<std::size_t> working_sets = {}, int repetitions = 3);

/// Full campaign for a machine: every supported ISA x representative thread
/// count, every model appended to the KB as a BenchmarkInterface entry.
/// Returns the number of models recorded.
Expected<int> record_carm_campaign(kb::KnowledgeBase& knowledge_base,
                                   std::uint64_t seed = 2024);

/// Reconstructs the CARM for (isa, threads) from KB benchmark entries
/// without re-running microbenchmarks.
Expected<CarmModel> carm_from_kb(const kb::KnowledgeBase& knowledge_base,
                                 topology::Isa isa, int threads);

}  // namespace pmove::carm
