#include "carm/model.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace pmove::carm {

using topology::Isa;
using topology::MachineSpec;

CarmModel::CarmModel(std::vector<MemoryRoof> roofs, double peak_gflops,
                     Isa isa, int threads)
    : roofs_(std::move(roofs)),
      peak_gflops_(peak_gflops),
      isa_(isa),
      threads_(threads) {}

double CarmModel::attainable(double ai, const MemoryRoof& roof) const {
  return std::min(peak_gflops_, ai * roof.gbs);
}

double CarmModel::attainable_best(double ai) const {
  double best = 0.0;
  for (const auto& roof : roofs_) {
    best = std::max(best, attainable(ai, roof));
  }
  return best;
}

double CarmModel::ridge_ai(const MemoryRoof& roof) const {
  return roof.gbs > 0.0 ? peak_gflops_ / roof.gbs : 0.0;
}

const MemoryRoof* CarmModel::roof(std::string_view name) const {
  for (const auto& roof : roofs_) {
    if (roof.name == name) return &roof;
  }
  return nullptr;
}

kb::BenchmarkInterface CarmModel::to_benchmark(std::string host) const {
  kb::BenchmarkInterface bench;
  bench.host = std::move(host);
  bench.benchmark = "CARM";
  bench.compiler = "gcc";
  bench.parameters["isa"] = std::string(topology::to_string(isa_));
  bench.parameters["threads"] = std::to_string(threads_);
  for (const auto& roof : roofs_) {
    bench.results.push_back({roof.name + "_gbps", roof.gbs, "GB/s"});
  }
  bench.results.push_back({"peak_gflops", peak_gflops_, "GFLOP/s"});
  return bench;
}

Expected<CarmModel> CarmModel::from_benchmark(
    const kb::BenchmarkInterface& bench) {
  if (bench.benchmark != "CARM") {
    return Status::invalid_argument("not a CARM benchmark entry: " +
                                    bench.benchmark);
  }
  std::vector<MemoryRoof> roofs;
  double peak = 0.0;
  for (const auto& result : bench.results) {
    if (result.name == "peak_gflops") {
      peak = result.value;
    } else if (strings::ends_with(result.name, "_gbps")) {
      roofs.push_back(
          {result.name.substr(0, result.name.size() - 5), result.value});
    }
  }
  if (roofs.empty() || peak <= 0.0) {
    return Status::parse_error("CARM entry missing roofs or peak");
  }
  Isa isa = Isa::kScalar;
  if (auto it = bench.parameters.find("isa"); it != bench.parameters.end()) {
    for (Isa candidate :
         {Isa::kScalar, Isa::kSse, Isa::kAvx2, Isa::kAvx512}) {
      if (topology::to_string(candidate) == it->second) isa = candidate;
    }
  }
  int threads = 1;
  if (auto it = bench.parameters.find("threads");
      it != bench.parameters.end()) {
    threads = std::max(1, std::atoi(it->second.c_str()));
  }
  return CarmModel(std::move(roofs), peak, isa, threads);
}

Expected<CarmModel> build_carm_analytic(const MachineSpec& machine,
                                        Isa isa, int threads) {
  if (threads < 1) return Status::invalid_argument("threads must be >= 1");
  if (!machine.isa.supports(isa)) {
    return Status::unsupported(std::string(topology::to_string(isa)) +
                               " not supported on " + machine.hostname);
  }
  const int cores_engaged = std::min(threads, machine.total_cores());
  const double ghz = machine.base_ghz;
  std::vector<MemoryRoof> roofs;
  for (const auto& level : machine.cache_levels) {
    double gbs = level.bytes_per_cycle_per_core * ghz * cores_engaged;
    if (level.shared) {
      // A shared level saturates: per-core bandwidth does not scale past
      // roughly half the socket's cores.
      const double cap = level.bytes_per_cycle_per_core * ghz *
                         std::max(1.0, machine.cores_per_socket * 0.5) *
                         machine.sockets;
      gbs = std::min(gbs, cap);
    }
    roofs.push_back({level.name, gbs});
  }
  const double dram =
      std::min(machine.dram_bytes_per_cycle_per_core() * ghz * cores_engaged,
               machine.dram_gbs_per_socket * machine.sockets);
  roofs.push_back({"DRAM", dram});
  const double peak = machine.isa.at(isa) * ghz * cores_engaged;
  return CarmModel(std::move(roofs), peak, isa, threads);
}

std::vector<int> representative_thread_counts(const MachineSpec& machine) {
  std::vector<int> counts = {1, std::max(1, machine.total_cores() / 2),
                             machine.total_cores(),
                             machine.total_threads()};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

std::string render_carm_ascii(const CarmModel& model,
                              const std::vector<PlotPoint>& points,
                              int width, int height) {
  // Log-log canvas covering AI 2^-6..2^6 and 0.1..2x peak GFLOPS.
  const double ai_min = std::pow(2.0, -6), ai_max = std::pow(2.0, 6);
  double g_max = model.peak_gflops() * 2.0;
  double g_min = g_max / 1e5;
  for (const auto& p : points) {
    if (p.gflops > 0.0) g_min = std::min(g_min, p.gflops / 2.0);
  }
  auto col_of = [&](double ai) {
    const double f = (std::log10(ai) - std::log10(ai_min)) /
                     (std::log10(ai_max) - std::log10(ai_min));
    return static_cast<int>(f * (width - 1));
  };
  auto row_of = [&](double gflops) {
    const double f = (std::log10(gflops) - std::log10(g_min)) /
                     (std::log10(g_max) - std::log10(g_min));
    return (height - 1) - static_cast<int>(f * (height - 1));
  };
  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width),
                                              ' '));
  auto plot = [&](double ai, double gflops, char symbol) {
    if (ai <= 0.0 || gflops <= 0.0) return;
    const int col = col_of(ai);
    const int row = row_of(std::min(gflops, g_max));
    if (col >= 0 && col < width && row >= 0 && row < height) {
      canvas[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          symbol;
    }
  };
  // Roofs: '-' for the compute ceiling, '/' for bandwidth slopes.
  for (int c = 0; c < width; ++c) {
    const double ai =
        std::pow(10.0, std::log10(ai_min) +
                           (std::log10(ai_max) - std::log10(ai_min)) * c /
                               (width - 1));
    for (const auto& roof : model.roofs()) {
      const double g = model.attainable(ai, roof);
      plot(ai, g, g >= model.peak_gflops() * 0.999 ? '-' : '/');
    }
  }
  for (const auto& p : points) plot(p.ai, p.gflops, p.symbol);

  std::string out;
  out += "GFLOP/s (log)  peak=" +
         strings::format_double(model.peak_gflops(), 1) + " [" +
         std::string(topology::to_string(model.isa())) + ", t=" +
         std::to_string(model.threads()) + "]\n";
  for (const auto& line : canvas) out += "|" + line + "\n";
  out += "+" + std::string(static_cast<std::size_t>(width), '-') + "\n";
  out += " AI = FLOP/byte (log), 2^-6 .. 2^6   roofs:";
  for (const auto& roof : model.roofs()) {
    out += " " + roof.name + "=" + strings::format_double(roof.gbs, 0) +
           "GB/s";
  }
  out += "\n";
  return out;
}

}  // namespace pmove::carm
