#include "carm/microbench.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "util/rng.hpp"

namespace pmove::carm {

using topology::Isa;
using topology::MachineSpec;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline void do_not_optimize(double& value) { asm volatile("" : "+x"(value)); }

/// Streaming read bandwidth over a working set of `bytes`.
double measure_bandwidth_gbs(std::size_t bytes, int repetitions) {
  const std::size_t n = std::max<std::size_t>(bytes / sizeof(double), 1024);
  std::vector<double> data(n, 1.0);
  // Warm the cache level.
  double warm = std::accumulate(data.begin(), data.end(), 0.0);
  do_not_optimize(warm);
  double best = 0.0;
  // Sweep enough times that the timer resolution is irrelevant.
  const int sweeps = std::max<int>(
      1, static_cast<int>((32u << 20) / std::max<std::size_t>(bytes, 1)));
  for (int rep = 0; rep < repetitions; ++rep) {
    const double t0 = now_seconds();
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (int sweep = 0; sweep < sweeps; ++sweep) {
      std::size_t i = 0;
      for (; i + 4 <= n; i += 4) {
        s0 += data[i];
        s1 += data[i + 1];
        s2 += data[i + 2];
        s3 += data[i + 3];
      }
      for (; i < n; ++i) s0 += data[i];
    }
    double guard = s0 + s1 + s2 + s3;
    do_not_optimize(guard);
    const double dt = now_seconds() - t0;
    if (dt > 0.0) {
      best = std::max(best, static_cast<double>(n) * sizeof(double) *
                                sweeps / dt / 1e9);
    }
  }
  return best;
}

/// Peak FLOPs via independent FMA chains (scalar code; the compiler's
/// vectorization determines what the host actually sustains).
double measure_peak_gflops(int repetitions) {
  double best = 0.0;
  constexpr std::int64_t kSteps = 8'000'000;
  for (int rep = 0; rep < repetitions; ++rep) {
    double r0 = 1.0, r1 = 1.1, r2 = 1.2, r3 = 1.3;
    double r4 = 1.4, r5 = 1.5, r6 = 1.6, r7 = 1.7;
    const double x = 1.0000001, y = 0.9999999;
    const double t0 = now_seconds();
    for (std::int64_t i = 0; i < kSteps; ++i) {
      r0 = r0 * x + y;
      r1 = r1 * x + y;
      r2 = r2 * x + y;
      r3 = r3 * x + y;
      r4 = r4 * x + y;
      r5 = r5 * x + y;
      r6 = r6 * x + y;
      r7 = r7 * x + y;
    }
    const double dt = now_seconds() - t0;
    double guard = r0 + r1 + r2 + r3 + r4 + r5 + r6 + r7;
    do_not_optimize(guard);
    if (dt > 0.0) best = std::max(best, 16.0 * kSteps / dt / 1e9);
  }
  return best;
}

}  // namespace

Expected<CarmModel> run_carm_machine_mode(const MachineSpec& machine,
                                          const MicrobenchOptions& options) {
  auto analytic = build_carm_analytic(machine, options.isa, options.threads);
  if (!analytic) return analytic.status();
  Rng rng(mix_seed(options.seed,
                   static_cast<std::uint64_t>(options.threads) * 10 +
                       static_cast<std::uint64_t>(options.isa)));
  std::vector<MemoryRoof> roofs;
  for (const auto& roof : analytic->roofs()) {
    roofs.push_back(
        {roof.name,
         roof.gbs * rng.gaussian(1.0, options.noise_rel_sigma)});
  }
  const double peak =
      analytic->peak_gflops() * rng.gaussian(1.0, options.noise_rel_sigma);
  return CarmModel(std::move(roofs), peak, options.isa, options.threads);
}

Expected<HostMicrobenchResult> run_carm_host_mode(
    std::vector<std::size_t> working_sets, int repetitions) {
  if (working_sets.empty()) {
    working_sets = {16u << 10, 256u << 10, 4u << 20, 64u << 20};
  }
  if (repetitions < 1) {
    return Status::invalid_argument("repetitions must be >= 1");
  }
  static const char* kLevelNames[] = {"L1", "L2", "L3", "DRAM"};
  HostMicrobenchResult result;
  std::vector<MemoryRoof> roofs;
  for (std::size_t i = 0; i < working_sets.size(); ++i) {
    const std::string name =
        i < 4 ? kLevelNames[i] : "LVL" + std::to_string(i);
    roofs.push_back(
        {name, measure_bandwidth_gbs(working_sets[i], repetitions)});
    result.working_sets.push_back(static_cast<double>(working_sets[i]));
  }
  const double peak = measure_peak_gflops(repetitions);
  result.model = CarmModel(std::move(roofs), peak, Isa::kScalar, 1);
  return result;
}

Expected<int> record_carm_campaign(kb::KnowledgeBase& knowledge_base,
                                   std::uint64_t seed) {
  const MachineSpec& machine = knowledge_base.machine();
  int recorded = 0;
  for (Isa isa : {Isa::kScalar, Isa::kSse, Isa::kAvx2, Isa::kAvx512}) {
    if (!machine.isa.supports(isa)) continue;
    for (int threads : representative_thread_counts(machine)) {
      MicrobenchOptions options;
      options.isa = isa;
      options.threads = threads;
      options.seed = seed;
      auto model = run_carm_machine_mode(machine, options);
      if (!model) return model.status();
      knowledge_base.attach_benchmark(
          model->to_benchmark(machine.hostname));
      ++recorded;
    }
  }
  return recorded;
}

Expected<CarmModel> carm_from_kb(const kb::KnowledgeBase& knowledge_base,
                                 Isa isa, int threads) {
  for (const auto& bench : knowledge_base.benchmarks()) {
    if (bench.benchmark != "CARM") continue;
    auto model = CarmModel::from_benchmark(bench);
    if (!model) continue;
    if (model->isa() == isa && model->threads() == threads) return model;
  }
  return Status::not_found(
      "no CARM entry in KB for " + std::string(topology::to_string(isa)) +
      " with " + std::to_string(threads) + " threads");
}

}  // namespace pmove::carm
