// The live-CARM panel (paper, Sections II and IV-B.2).
//
// "Takes performance-counter data and automatically calculates CARM-related
// metrics, displaying them in conjunction with other metrics to give users
// an immediate idea of how their application performs relative to
// architectural limits."
//
// The panel is wired from the KB: the CARM plot is reconstructed from the
// stored microbenchmark results, the FLOP and byte formulas come from the
// abstraction layer for the target's PMU, and application points are
// computed per sample interval from the TSDB rows of an observation.
#pragma once

#include <string>
#include <vector>

#include "abstraction/layer.hpp"
#include "carm/model.hpp"
#include "kb/kb.hpp"
#include "kb/observation.hpp"
#include "tsdb/db.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace pmove::carm {

struct LivePoint {
  TimeNs time = 0;
  double ai = 0.0;       ///< FLOP / byte over the interval
  double gflops = 0.0;   ///< FLOPs / interval seconds
  double flops = 0.0;    ///< raw interval FLOPs
  double bytes = 0.0;    ///< raw interval bytes
};

class LiveCarmPanel {
 public:
  /// `pmu_name` selects the abstraction-layer mapping (e.g. "skx",
  /// "zen3").
  LiveCarmPanel(CarmModel model, const abstraction::AbstractionLayer* layer,
                std::string pmu_name);

  [[nodiscard]] const CarmModel& model() const { return model_; }

  /// The hardware events the PMU must be programmed with to feed this
  /// panel (union of the FLOP and byte formulas).
  [[nodiscard]] Expected<std::vector<std::string>> required_events() const;

  /// Computes one live point per sample timestamp of the observation: the
  /// stored fields are interval deltas, so each row yields interval FLOPs /
  /// bytes directly.
  [[nodiscard]] Expected<std::vector<LivePoint>> points_from_observation(
      const tsdb::TimeSeriesDb& db,
      const kb::ObservationInterface& observation) const;

  /// Renders the panel: the CARM plot with the points overlaid.
  [[nodiscard]] std::string render(const std::vector<LivePoint>& points,
                                   char symbol = '*') const;

 private:
  CarmModel model_;
  const abstraction::AbstractionLayer* layer_;
  std::string pmu_name_;
};

/// Convenience: panel for (isa, threads) built entirely from the KB.
Expected<LiveCarmPanel> make_live_panel(
    const kb::KnowledgeBase& knowledge_base,
    const abstraction::AbstractionLayer* layer, topology::Isa isa,
    int threads);

}  // namespace pmove::carm
