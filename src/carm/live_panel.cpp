#include "carm/live_panel.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "carm/microbench.hpp"
#include "kb/ids.hpp"
#include "query/plan.hpp"

namespace pmove::carm {

LiveCarmPanel::LiveCarmPanel(CarmModel model,
                             const abstraction::AbstractionLayer* layer,
                             std::string pmu_name)
    : model_(std::move(model)),
      layer_(layer),
      pmu_name_(std::move(pmu_name)) {}

Expected<std::vector<std::string>> LiveCarmPanel::required_events() const {
  auto flops = layer_->get(pmu_name_, "FLOPS_ALL_DP");
  if (!flops) return flops.status();
  auto mem_ops = layer_->get(pmu_name_, "TOTAL_MEMORY_OPERATIONS");
  if (!mem_ops) return mem_ops.status();
  std::vector<std::string> events = flops->hw_events();
  for (const auto& event : mem_ops->hw_events()) {
    if (std::find(events.begin(), events.end(), event) == events.end()) {
      events.push_back(event);
    }
  }
  return events;
}

namespace {

/// Bytes moved by one memory instruction of code dominated by the given FP
/// event: the paper infers transfer width "from the ratios of different FP
/// instructions (scalar, SSE, AVX2, AVX512), which are applied to the total
/// amount of store and load events".
double event_width_bytes(std::string_view event) {
  if (event.find("512B") != std::string_view::npos) return 64.0;
  if (event.find("256B") != std::string_view::npos) return 32.0;
  if (event.find("128B") != std::string_view::npos) return 16.0;
  return 8.0;  // scalar / merged AMD flop events
}

}  // namespace

Expected<std::vector<LivePoint>> LiveCarmPanel::points_from_observation(
    const tsdb::TimeSeriesDb& db,
    const kb::ObservationInterface& observation) const {
  auto flop_formula = layer_->get(pmu_name_, "FLOPS_ALL_DP");
  if (!flop_formula) return flop_formula.status();
  auto mem_ops_formula = layer_->get(pmu_name_, "TOTAL_MEMORY_OPERATIONS");
  if (!mem_ops_formula) return mem_ops_formula.status();
  if (flop_formula->unsupported() || mem_ops_formula->unsupported()) {
    return Status::unsupported("CARM formulas unavailable on " + pmu_name_);
  }

  auto events = required_events();
  if (!events) return events.status();

  // Per event: time -> sum of per-CPU delta fields.
  std::map<std::string, std::map<TimeNs, double>> series;
  for (const auto& event : *events) {
    auto result =
        query::run(db, query::QueryBuilder(kb::hw_measurement(event))
                           .select_all()
                           .where_tag("tag", observation.tag)
                           .build());
    if (!result) return result.status();
    auto& per_time = series[event];
    for (const auto& row : result->rows) {
      const TimeNs t = static_cast<TimeNs>(row[0]);
      double sum = 0.0;
      for (std::size_t i = 1; i < row.size(); ++i) {
        if (!std::isnan(row[i])) sum += row[i];
      }
      per_time[t] += sum;
    }
  }

  // Timestamps come from the first FLOP event's series.
  const auto& anchor_events = flop_formula->hw_events();
  if (anchor_events.empty()) {
    return Status::internal("FLOP formula references no events");
  }
  const auto& anchor = series[anchor_events.front()];
  std::vector<LivePoint> points;
  TimeNs prev_time = observation.start;
  for (const auto& [t, anchor_value] : anchor) {
    auto resolve = [&series, t](std::string_view event) -> Expected<double> {
      auto it = series.find(std::string(event));
      if (it == series.end()) return 0.0;
      auto row = it->second.find(t);
      return row == it->second.end() ? 0.0 : row->second;
    };
    auto flops = flop_formula->evaluate(resolve);
    if (!flops) return flops.status();
    auto mem_ops = mem_ops_formula->evaluate(resolve);
    if (!mem_ops) return mem_ops.status();
    // Width-weighted byte estimate: average transfer size per memory
    // instruction, weighted by this interval's FP-instruction mix.
    double width_weight = 0.0;
    double instruction_total = 0.0;
    for (const auto& event : flop_formula->hw_events()) {
      auto value = resolve(event);
      if (!value || value.value() <= 0.0) continue;
      width_weight += value.value() * event_width_bytes(event);
      instruction_total += value.value();
    }
    const double width_bytes =
        instruction_total > 0.0 ? width_weight / instruction_total : 8.0;
    LivePoint point;
    point.time = t;
    point.flops = flops.value();
    point.bytes = mem_ops.value() * width_bytes;
    const double dt = to_seconds(std::max<TimeNs>(1, t - prev_time));
    point.gflops = point.flops / dt / 1e9;
    point.ai = point.bytes > 0.0 ? point.flops / point.bytes : 0.0;
    prev_time = t;
    if (point.flops > 0.0 && point.bytes > 0.0) points.push_back(point);
  }
  return points;
}

std::string LiveCarmPanel::render(const std::vector<LivePoint>& points,
                                  char symbol) const {
  std::vector<PlotPoint> plot_points;
  plot_points.reserve(points.size());
  for (const auto& p : points) {
    plot_points.push_back({p.ai, p.gflops, symbol});
  }
  return render_carm_ascii(model_, plot_points);
}

Expected<LiveCarmPanel> make_live_panel(
    const kb::KnowledgeBase& knowledge_base,
    const abstraction::AbstractionLayer* layer, topology::Isa isa,
    int threads) {
  auto model = carm_from_kb(knowledge_base, isa, threads);
  if (!model) return model.status();
  return LiveCarmPanel(
      std::move(model.value()), layer,
      std::string(pmu::pmu_short_name(knowledge_base.machine().uarch)));
}

}  // namespace pmove::carm
