// Cache-Aware Roofline Model (paper, Section IV-B).
//
// A CarmModel holds the sustainable bandwidth of every memory level (L1,
// L2, L3, DRAM — CARM characterizes the system "considering all memory
// levels") and the peak FP throughput for one ISA extension and thread
// count.  Models are built from machine specs (analytic mode), from real
// host microbenchmarks, or reconstructed from BenchmarkInterface results
// stored in the KB — "allowing for a re-construction of the CARM plot
// without the need to re-run all the microbenchmarks".
#pragma once

#include <string>
#include <vector>

#include "kb/observation.hpp"
#include "topology/machine.hpp"
#include "util/status.hpp"

namespace pmove::carm {

struct MemoryRoof {
  std::string name;   ///< "L1", "L2", "L3", "DRAM"
  double gbs = 0.0;   ///< sustainable bandwidth
};

class CarmModel {
 public:
  CarmModel() = default;
  CarmModel(std::vector<MemoryRoof> roofs, double peak_gflops,
            topology::Isa isa, int threads);

  [[nodiscard]] const std::vector<MemoryRoof>& roofs() const {
    return roofs_;
  }
  [[nodiscard]] double peak_gflops() const { return peak_gflops_; }
  [[nodiscard]] topology::Isa isa() const { return isa_; }
  [[nodiscard]] int threads() const { return threads_; }

  /// Attainable GFLOPS at arithmetic intensity `ai` against one roof:
  /// min(peak, ai x bandwidth).
  [[nodiscard]] double attainable(double ai, const MemoryRoof& roof) const;

  /// Attainable against the *best* (fastest) memory level — the upper
  /// envelope of the CARM plot.
  [[nodiscard]] double attainable_best(double ai) const;

  /// AI at which a roof meets the compute ceiling (ridge point).
  [[nodiscard]] double ridge_ai(const MemoryRoof& roof) const;

  [[nodiscard]] const MemoryRoof* roof(std::string_view name) const;

  /// Serialization to/from BenchmarkInterface results, e.g.
  /// {"L1_gbps": 540, ..., "peak_gflops": 230} with parameters
  /// {"isa": "avx512", "threads": "16"}.
  [[nodiscard]] kb::BenchmarkInterface to_benchmark(
      std::string host) const;
  static Expected<CarmModel> from_benchmark(
      const kb::BenchmarkInterface& bench);

 private:
  std::vector<MemoryRoof> roofs_;
  double peak_gflops_ = 0.0;
  topology::Isa isa_ = topology::Isa::kScalar;
  int threads_ = 1;
};

/// Analytic CARM for a machine spec: per-level bandwidth =
/// bytes/cycle/core x GHz x cores engaged (shared levels capped at the
/// socket aggregate; DRAM capped at the measured socket bandwidth), peak =
/// FLOPs/cycle(isa) x GHz x cores engaged.
Expected<CarmModel> build_carm_analytic(const topology::MachineSpec& machine,
                                        topology::Isa isa, int threads);

/// The representative thread counts P-MoVE benchmarks instead of every
/// possible count: 1, half the cores, all cores, all hardware threads.
std::vector<int> representative_thread_counts(
    const topology::MachineSpec& machine);

/// ASCII log-log CARM plot with application points overlaid (used by the
/// live-CARM panel and the figure benches).
struct PlotPoint {
  double ai = 0.0;
  double gflops = 0.0;
  char symbol = '*';
};
std::string render_carm_ascii(const CarmModel& model,
                              const std::vector<PlotPoint>& points,
                              int width = 72, int height = 24);

}  // namespace pmove::carm
