#include "workload/counter_source.hpp"

#include <cassert>

namespace pmove::workload {

LiveCounters::LiveCounters(int cpu_count)
    : cpu_count_(cpu_count),
      cells_(static_cast<std::size_t>(cpu_count) * kQuantityCount) {
  assert(cpu_count > 0);
  for (auto& cell : cells_) cell.store(0.0, std::memory_order_relaxed);
}

void LiveCounters::add(Quantity q, int cpu, double delta) {
  if (cpu < 0 || cpu >= cpu_count_) return;
  auto& cell = cells_[index(q, cpu)];
  double current = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(current, current + delta,
                                     std::memory_order_relaxed)) {
  }
}

double LiveCounters::cumulative(Quantity q, int cpu, TimeNs /*t*/) const {
  if (cpu < 0 || cpu >= cpu_count_) return 0.0;
  return cells_[index(q, cpu)].load(std::memory_order_relaxed);
}

double LiveCounters::total(Quantity q) const {
  double sum = 0.0;
  for (int cpu = 0; cpu < cpu_count_; ++cpu) {
    sum += cells_[index(q, cpu)].load(std::memory_order_relaxed);
  }
  return sum;
}

void LiveCounters::reset() {
  for (auto& cell : cells_) cell.store(0.0, std::memory_order_relaxed);
}

}  // namespace pmove::workload
