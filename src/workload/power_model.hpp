// Shared power/energy model for instrumented workloads.
//
// RAPL-style package energy is charged per chunk of work:
//   E = flops_scalar*e_s + flops_vector*e_v + bytes*e_b + P_static*t
// Scalar FLOPs cost ~3x more energy than vector FLOPs — wide SIMD amortizes
// front-end and scheduling energy — which is what makes scalar codes draw
// more package power for the same useful work (paper, Fig 7 discussion).
#pragma once

namespace pmove::workload {

struct PowerModel {
  double joules_per_scalar_flop = 1.1e-9;
  double joules_per_vector_flop = 0.35e-9;
  double joules_per_byte = 0.25e-10;
  double static_watts_per_core = 6.0;
  /// DRAM energy per byte that misses the last-level cache.
  double dram_joules_per_byte = 4.0e-10;

  [[nodiscard]] double chunk_energy(double scalar_flops, double vector_flops,
                                    double streamed_bytes,
                                    double seconds) const {
    return scalar_flops * joules_per_scalar_flop +
           vector_flops * joules_per_vector_flop +
           streamed_bytes * joules_per_byte +
           static_watts_per_core * seconds;
  }
};

inline const PowerModel& default_power_model() {
  static const PowerModel model;
  return model;
}

}  // namespace pmove::workload
