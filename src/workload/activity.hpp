// Activity traces: the ground-truth substrate behind the simulated PMUs.
//
// On a real system, PMUs count micro-architectural events produced by the
// running code.  Here, workloads (instrumented kernels, SpMV runs, synthetic
// phases) publish an ActivityTrace: a timeline of phases, each with exact
// per-quantity totals distributed over the participating CPUs.  The
// simulated PMU integrates the trace to answer "what is the cumulative count
// of event E on cpu C at time t?" — ground truth is exact by construction,
// which is precisely what Fig 4 of the paper needs (likwid-bench plays this
// role there).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.hpp"
#include "util/status.hpp"

namespace pmove::workload {

/// Micro-architectural quantities a workload can produce.  FLOP quantities
/// are in FLOPs (not instructions); loads/stores are instruction counts;
/// energy is in joules.
enum class Quantity : std::uint8_t {
  kCycles = 0,
  kInstructions,
  kUops,
  kScalarFlops,
  kSseFlops,
  kAvx2Flops,
  kAvx512Flops,
  kLoads,
  kStores,
  kL1Miss,
  kL2Miss,
  kL3Miss,
  kL3Access,
  kBranches,
  kBranchMisses,
  kEnergyPkgJoules,
  kEnergyDramJoules,
  kCount_,  // sentinel
};

constexpr std::size_t kQuantityCount = static_cast<std::size_t>(
    Quantity::kCount_);

std::string_view to_string(Quantity q);

/// Totals for one phase, summed over all participating CPUs.
class QuantitySet {
 public:
  [[nodiscard]] double get(Quantity q) const {
    return values_[static_cast<std::size_t>(q)];
  }
  void set(Quantity q, double v) { values_[static_cast<std::size_t>(q)] = v; }
  void add(Quantity q, double v) { values_[static_cast<std::size_t>(q)] += v; }

  /// Total FLOPs across all ISA classes.
  [[nodiscard]] double total_flops() const {
    return get(Quantity::kScalarFlops) + get(Quantity::kSseFlops) +
           get(Quantity::kAvx2Flops) + get(Quantity::kAvx512Flops);
  }

  QuantitySet& operator+=(const QuantitySet& other) {
    for (std::size_t i = 0; i < kQuantityCount; ++i) {
      values_[i] += other.values_[i];
    }
    return *this;
  }

 private:
  std::array<double, kQuantityCount> values_{};
};

/// One contiguous span of activity: [start, end) with totals spread evenly
/// over `cpus` and evenly over time (rates are constant within a phase).
struct Phase {
  std::string name;
  TimeNs start = 0;
  TimeNs end = 0;
  std::vector<int> cpus;   ///< participating logical CPUs
  QuantitySet totals;      ///< summed over all participating CPUs
  /// Per-CPU share of the totals; empty means an even split.  When present,
  /// must be the same length as `cpus` and sum to ~1 (used for modelling
  /// load imbalance).
  std::vector<double> cpu_weights;

  [[nodiscard]] TimeNs duration() const { return end - start; }
  [[nodiscard]] double cpu_share(int cpu) const;
};

/// An immutable timeline of phases.  Phases may not overlap in time on the
/// same CPU (enforced by TraceBuilder).
class ActivityTrace {
 public:
  ActivityTrace() = default;
  explicit ActivityTrace(std::vector<Phase> phases);

  [[nodiscard]] const std::vector<Phase>& phases() const { return phases_; }
  [[nodiscard]] bool empty() const { return phases_.empty(); }
  [[nodiscard]] TimeNs start() const;
  [[nodiscard]] TimeNs end() const;

  /// Cumulative count of `q` on `cpu` from trace start until time `t`
  /// (linear interpolation inside phases).
  [[nodiscard]] double cumulative(Quantity q, int cpu, TimeNs t) const;

  /// Cumulative count of `q` summed across all CPUs until time `t`.
  [[nodiscard]] double cumulative_all(Quantity q, TimeNs t) const;

  /// Exact total of `q` over the whole trace (all CPUs).
  [[nodiscard]] double total(Quantity q) const;

  /// Exact total of `q` over the whole trace for one CPU.
  [[nodiscard]] double total_for_cpu(Quantity q, int cpu) const;

 private:
  std::vector<Phase> phases_;
};

/// Incremental trace construction; phases are appended in time order.
class TraceBuilder {
 public:
  /// Starts the timeline at `origin`.
  explicit TraceBuilder(TimeNs origin = 0) : cursor_(origin) {}

  /// Appends a phase of `duration` on `cpus` with the given totals and
  /// returns the phase start time.  Weights, when given, must match `cpus`.
  TimeNs add_phase(std::string name, TimeNs duration, std::vector<int> cpus,
                   QuantitySet totals, std::vector<double> weights = {});

  /// Appends an idle gap (no activity).
  void add_gap(TimeNs duration) { cursor_ += duration; }

  [[nodiscard]] TimeNs cursor() const { return cursor_; }

  [[nodiscard]] ActivityTrace build() &&;

 private:
  TimeNs cursor_;
  std::vector<Phase> phases_;
};

}  // namespace pmove::workload
