#include "workload/activity.hpp"

#include <algorithm>
#include <cassert>

namespace pmove::workload {

std::string_view to_string(Quantity q) {
  switch (q) {
    case Quantity::kCycles: return "cycles";
    case Quantity::kInstructions: return "instructions";
    case Quantity::kUops: return "uops";
    case Quantity::kScalarFlops: return "scalar_flops";
    case Quantity::kSseFlops: return "sse_flops";
    case Quantity::kAvx2Flops: return "avx2_flops";
    case Quantity::kAvx512Flops: return "avx512_flops";
    case Quantity::kLoads: return "loads";
    case Quantity::kStores: return "stores";
    case Quantity::kL1Miss: return "l1_miss";
    case Quantity::kL2Miss: return "l2_miss";
    case Quantity::kL3Miss: return "l3_miss";
    case Quantity::kL3Access: return "l3_access";
    case Quantity::kBranches: return "branches";
    case Quantity::kBranchMisses: return "branch_misses";
    case Quantity::kEnergyPkgJoules: return "energy_pkg_j";
    case Quantity::kEnergyDramJoules: return "energy_dram_j";
    case Quantity::kCount_: break;
  }
  return "unknown";
}

double Phase::cpu_share(int cpu) const {
  auto it = std::find(cpus.begin(), cpus.end(), cpu);
  if (it == cpus.end()) return 0.0;
  if (cpu_weights.empty()) {
    return cpus.empty() ? 0.0 : 1.0 / static_cast<double>(cpus.size());
  }
  return cpu_weights[static_cast<std::size_t>(it - cpus.begin())];
}

ActivityTrace::ActivityTrace(std::vector<Phase> phases)
    : phases_(std::move(phases)) {}

TimeNs ActivityTrace::start() const {
  return phases_.empty() ? 0 : phases_.front().start;
}

TimeNs ActivityTrace::end() const {
  return phases_.empty() ? 0 : phases_.back().end;
}

double ActivityTrace::cumulative(Quantity q, int cpu, TimeNs t) const {
  double sum = 0.0;
  for (const Phase& phase : phases_) {
    if (t <= phase.start) break;
    const double share = phase.cpu_share(cpu);
    if (share == 0.0) continue;
    const double phase_total = phase.totals.get(q) * share;
    if (t >= phase.end || phase.duration() <= 0) {
      sum += phase_total;
    } else {
      const double frac = static_cast<double>(t - phase.start) /
                          static_cast<double>(phase.duration());
      sum += phase_total * frac;
    }
  }
  return sum;
}

double ActivityTrace::cumulative_all(Quantity q, TimeNs t) const {
  double sum = 0.0;
  for (const Phase& phase : phases_) {
    if (t <= phase.start) break;
    const double phase_total = phase.totals.get(q);
    if (t >= phase.end || phase.duration() <= 0) {
      sum += phase_total;
    } else {
      const double frac = static_cast<double>(t - phase.start) /
                          static_cast<double>(phase.duration());
      sum += phase_total * frac;
    }
  }
  return sum;
}

double ActivityTrace::total(Quantity q) const {
  double sum = 0.0;
  for (const Phase& phase : phases_) sum += phase.totals.get(q);
  return sum;
}

double ActivityTrace::total_for_cpu(Quantity q, int cpu) const {
  double sum = 0.0;
  for (const Phase& phase : phases_) {
    sum += phase.totals.get(q) * phase.cpu_share(cpu);
  }
  return sum;
}

TimeNs TraceBuilder::add_phase(std::string name, TimeNs duration,
                               std::vector<int> cpus, QuantitySet totals,
                               std::vector<double> weights) {
  assert(duration >= 0);
  assert(weights.empty() || weights.size() == cpus.size());
  Phase phase;
  phase.name = std::move(name);
  phase.start = cursor_;
  phase.end = cursor_ + duration;
  phase.cpus = std::move(cpus);
  phase.totals = totals;
  phase.cpu_weights = std::move(weights);
  cursor_ = phase.end;
  phases_.push_back(std::move(phase));
  return phases_.back().start;
}

ActivityTrace TraceBuilder::build() && {
  return ActivityTrace(std::move(phases_));
}

}  // namespace pmove::workload
