// Counter sources: where the simulated PMU gets its ground truth.
//
// Two implementations:
//  - TraceSource wraps an ActivityTrace (post-hoc or synthetic timelines,
//    virtual-time experiments);
//  - LiveCounters is a bank of atomics that instrumented kernels bump while
//    they run, so a sampler thread can observe genuinely concurrent progress
//    (real interference, real variance — what Fig 5 measures).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "util/clock.hpp"
#include "workload/activity.hpp"

namespace pmove::workload {

class CounterSource {
 public:
  virtual ~CounterSource() = default;
  /// Cumulative count of `q` on `cpu` at time `t` (ns since source origin).
  [[nodiscard]] virtual double cumulative(Quantity q, int cpu,
                                          TimeNs t) const = 0;
};

/// Adapts an ActivityTrace.
class TraceSource final : public CounterSource {
 public:
  explicit TraceSource(const ActivityTrace* trace) : trace_(trace) {}
  [[nodiscard]] double cumulative(Quantity q, int cpu,
                                  TimeNs t) const override {
    return trace_ == nullptr ? 0.0 : trace_->cumulative(q, cpu, t);
  }

 private:
  const ActivityTrace* trace_;
};

/// Live, thread-safe counter bank.  Ignores the query time: "cumulative so
/// far" is whatever the workers have published.
class LiveCounters final : public CounterSource {
 public:
  explicit LiveCounters(int cpu_count);

  /// Adds `delta` to quantity `q` on `cpu` (relaxed; counters are
  /// statistical).
  void add(Quantity q, int cpu, double delta);

  [[nodiscard]] double cumulative(Quantity q, int cpu,
                                  TimeNs t) const override;

  /// Exact total across all CPUs.
  [[nodiscard]] double total(Quantity q) const;

  void reset();

  [[nodiscard]] int cpu_count() const { return cpu_count_; }

 private:
  [[nodiscard]] std::size_t index(Quantity q, int cpu) const {
    return static_cast<std::size_t>(cpu) * kQuantityCount +
           static_cast<std::size_t>(q);
  }

  int cpu_count_;
  std::vector<std::atomic<double>> cells_;
};

}  // namespace pmove::workload
