#include "tsdb/db.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>

#include <fstream>

#include "util/strings.hpp"

namespace pmove::tsdb {

std::size_t QueryResult::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return i;
  }
  return columns.size();
}

Status TimeSeriesDb::write(Point point) {
  if (point.measurement.empty()) {
    return Status::invalid_argument("point missing measurement");
  }
  if (point.fields.empty()) {
    return Status::invalid_argument("point has no fields");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  bytes_written_ += point.wire_size();
  auto it = series_.find(point.measurement);
  if (it == series_.end()) {
    it = series_.emplace(point.measurement, std::vector<Point>{}).first;
  }
  // Keep series time-ordered; appends are the common case.
  auto& points = it->second;
  if (!points.empty() && point.time < points.back().time) {
    auto pos = std::upper_bound(
        points.begin(), points.end(), point.time,
        [](TimeNs t, const Point& p) { return t < p.time; });
    points.insert(pos, std::move(point));
  } else {
    points.push_back(std::move(point));
  }
  return Status::ok();
}

Status TimeSeriesDb::write_line(std::string_view line) {
  auto point = Point::from_line(line);
  if (!point) return point.status();
  return write(std::move(point.value()));
}

Status TimeSeriesDb::write_batch(std::vector<Point> points) {
  for (const Point& point : points) {
    if (point.measurement.empty()) {
      return Status::invalid_argument("point missing measurement");
    }
    if (point.fields.empty()) {
      return Status::invalid_argument("point has no fields");
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // Cache the series iterator: batches overwhelmingly carry runs of points
  // for the same measurement, so most points skip the map lookup.  Track the
  // pre-append size of every touched series so ordering can be restored with
  // one tail sort + merge instead of a per-point upper_bound+insert.
  auto hint = series_.end();
  std::vector<std::pair<std::vector<Point>*, std::size_t>> touched;
  for (Point& point : points) {
    bytes_written_ += point.wire_size();
    if (hint == series_.end() || hint->first != point.measurement) {
      hint = series_.find(point.measurement);
      if (hint == series_.end()) {
        hint = series_.emplace(point.measurement, std::vector<Point>{}).first;
      }
      auto* series = &hint->second;
      bool seen = false;
      for (const auto& [ptr, size] : touched) {
        if (ptr == series) {
          seen = true;
          break;
        }
      }
      if (!seen) touched.emplace_back(series, series->size());
    }
    hint->second.push_back(std::move(point));
  }
  // Restore time order per touched series: stable-sort the appended tail
  // (preserving arrival order among equal timestamps, matching the per-point
  // path's upper_bound semantics) and merge it with the already-ordered
  // prefix only when the tail actually lands out of order.
  const auto by_time = [](const Point& a, const Point& b) {
    return a.time < b.time;
  };
  for (const auto& [series, old_size] : touched) {
    const auto begin = series->begin();
    const auto mid = begin + static_cast<std::ptrdiff_t>(old_size);
    if (mid == series->end()) continue;
    if (!std::is_sorted(mid, series->end(), by_time)) {
      std::stable_sort(mid, series->end(), by_time);
    }
    if (old_size != 0 && by_time(*mid, *(mid - 1))) {
      std::inplace_merge(begin, mid, series->end(), by_time);
    }
  }
  return Status::ok();
}

std::size_t TimeSeriesDb::enforce_retention(TimeNs now) {
  if (retention_.duration <= 0) return 0;
  const TimeNs cutoff = now - retention_.duration;
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t dropped = 0;
  for (auto& [name, points] : series_) {
    auto pos = std::lower_bound(
        points.begin(), points.end(), cutoff,
        [](const Point& p, TimeNs t) { return p.time < t; });
    dropped += static_cast<std::size_t>(pos - points.begin());
    points.erase(points.begin(), pos);
  }
  return dropped;
}

std::vector<std::string> TimeSeriesDb::measurements() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, points] : series_) out.push_back(name);
  return out;
}

std::size_t TimeSeriesDb::point_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [name, points] : series_) total += points.size();
  return total;
}

std::size_t TimeSeriesDb::point_count(std::string_view measurement) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(measurement);
  return it == series_.end() ? 0 : it->second.size();
}

bool TimeSeriesDb::has_measurement(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_.find(name) != series_.end();
}

std::vector<Point> TimeSeriesDb::collect(
    std::string_view measurement, TimeNs time_min, TimeNs time_max,
    const std::map<std::string, std::string>& tag_filters) const {
  std::vector<Point> out;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(measurement);
  if (it == series_.end()) return out;
  for (const Point& p : it->second) {
    if (p.time < time_min || p.time > time_max) continue;
    bool ok = true;
    for (const auto& [k, v] : tag_filters) {
      auto tag = p.tags.find(k);
      if (tag == p.tags.end() || tag->second != v) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(p);
  }
  return out;
}

Status TimeSeriesDb::dump_to_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::unavailable("cannot write " + path);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, points] : series_) {
    for (const Point& point : points) {
      out << point.to_line() << "\n";
    }
  }
  return out.good() ? Status::ok()
                    : Status::unavailable("write failed: " + path);
}

Status TimeSeriesDb::load_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::not_found("cannot open " + path);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (strings::trim(line).empty()) continue;
    if (Status s = write_line(line); !s.is_ok()) {
      return Status::parse_error(path + ":" + std::to_string(line_no) +
                                 ": " + s.message());
    }
  }
  return Status::ok();
}

void TimeSeriesDb::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  series_.clear();
  bytes_written_ = 0;
}

// ------------------------------------------------------------ query engine

namespace {

struct Selector {
  std::string field;
  std::string aggregate;  ///< empty for raw selection
  [[nodiscard]] std::string label() const {
    return aggregate.empty() ? field : aggregate + "(" + field + ")";
  }
};

struct ParsedQuery {
  std::vector<Selector> selectors;
  bool select_all = false;
  std::string measurement;
  std::map<std::string, std::string> tag_filters;
  TimeNs time_min = std::numeric_limits<TimeNs>::min();
  TimeNs time_max = std::numeric_limits<TimeNs>::max();
  TimeNs group_interval = 0;  ///< GROUP BY time(<ns>); 0 = no grouping
};

std::string strip_quotes(std::string_view s) {
  s = strings::trim(s);
  if (s.size() >= 2 && ((s.front() == '"' && s.back() == '"') ||
                        (s.front() == '\'' && s.back() == '\''))) {
    return std::string(s.substr(1, s.size() - 2));
  }
  return std::string(s);
}

// Case-insensitive search for a keyword surrounded by word boundaries.
std::size_t find_keyword(std::string_view text, std::string_view keyword) {
  const std::string lower = strings::to_lower(text);
  const std::string key = strings::to_lower(keyword);
  std::size_t pos = 0;
  while ((pos = lower.find(key, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || std::isspace(static_cast<unsigned char>(
                                         lower[pos - 1]));
    const std::size_t end = pos + key.size();
    const bool right_ok =
        end >= lower.size() ||
        std::isspace(static_cast<unsigned char>(lower[end]));
    if (left_ok && right_ok) return pos;
    pos += 1;
  }
  return std::string::npos;
}

Expected<Selector> parse_selector(std::string_view text) {
  text = strings::trim(text);
  std::size_t open = text.find('(');
  if (open != std::string_view::npos && text.back() == ')') {
    Selector sel;
    sel.aggregate = strings::to_lower(strings::trim(text.substr(0, open)));
    sel.field = strip_quotes(
        text.substr(open + 1, text.size() - open - 2));
    static const char* kAggs[] = {"mean", "min",   "max",   "sum",
                                  "count", "stddev", "first", "last"};
    const bool known =
        std::any_of(std::begin(kAggs), std::end(kAggs),
                    [&sel](const char* a) { return sel.aggregate == a; });
    if (!known) {
      return Status::parse_error("unknown aggregate function: " +
                                 sel.aggregate);
    }
    if (sel.field.empty()) {
      return Status::parse_error("aggregate needs a field: " +
                                 sel.aggregate + "()");
    }
    return sel;
  }
  Selector sel;
  sel.field = strip_quotes(text);
  return sel;
}

Expected<ParsedQuery> parse_query(std::string_view text) {
  ParsedQuery q;
  text = strings::trim(text);
  const std::size_t select_pos = find_keyword(text, "select");
  if (select_pos != 0) {
    return Status::parse_error("query must start with SELECT");
  }
  const std::size_t from_pos = find_keyword(text, "from");
  if (from_pos == std::string::npos) {
    return Status::parse_error("query missing FROM clause");
  }
  std::string_view select_clause =
      strings::trim(text.substr(6, from_pos - 6));
  if (select_clause == "*") {
    q.select_all = true;
  } else {
    // Split selectors on commas outside parentheses.
    int depth = 0;
    std::string current;
    auto flush = [&]() -> Status {
      if (strings::trim(current).empty()) {
        return Status::parse_error("empty selector in SELECT list");
      }
      auto sel = parse_selector(current);
      if (!sel) return sel.status();
      q.selectors.push_back(std::move(sel.value()));
      current.clear();
      return Status::ok();
    };
    for (char c : select_clause) {
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == ',' && depth == 0) {
        if (Status s = flush(); !s.is_ok()) return s;
      } else {
        current += c;
      }
    }
    if (Status s = flush(); !s.is_ok()) return s;
  }

  std::string_view rest = text.substr(from_pos + 4);
  // GROUP BY time(<N><unit>) — trailing clause, stripped first.
  const std::size_t group_pos = find_keyword(rest, "group");
  if (group_pos != std::string::npos) {
    std::string_view clause = strings::trim(rest.substr(group_pos + 5));
    if (find_keyword(clause, "by") != 0) {
      return Status::parse_error("expected BY after GROUP");
    }
    clause = strings::trim(clause.substr(2));
    if (!strings::starts_with(clause, "time(") || clause.back() != ')') {
      return Status::parse_error("only GROUP BY time(<interval>) supported");
    }
    std::string body(clause.substr(5, clause.size() - 6));
    // Units: ns, u(s), ms, s, m.
    double scale = 1.0;
    if (strings::ends_with(body, "ms")) {
      scale = 1e6;
      body.resize(body.size() - 2);
    } else if (strings::ends_with(body, "ns")) {
      body.resize(body.size() - 2);
    } else if (strings::ends_with(body, "us") ||
               strings::ends_with(body, "u")) {
      scale = 1e3;
      body.resize(body.size() - (strings::ends_with(body, "us") ? 2 : 1));
    } else if (strings::ends_with(body, "s")) {
      scale = 1e9;
      body.resize(body.size() - 1);
    } else if (strings::ends_with(body, "m")) {
      scale = 60e9;
      body.resize(body.size() - 1);
    }
    char* end = nullptr;
    const double value = std::strtod(body.c_str(), &end);
    if (end != body.c_str() + body.size() || value <= 0.0) {
      return Status::parse_error("bad GROUP BY interval: " + body);
    }
    q.group_interval = static_cast<TimeNs>(value * scale);
    rest = rest.substr(0, group_pos);
  }
  const std::size_t where_pos = find_keyword(rest, "where");
  std::string_view measurement_part =
      where_pos == std::string::npos ? rest : rest.substr(0, where_pos);
  q.measurement = strip_quotes(measurement_part);
  if (q.measurement.empty()) {
    return Status::parse_error("query missing measurement name");
  }

  if (where_pos != std::string::npos) {
    std::string_view where_clause = rest.substr(where_pos + 5);
    // Split on AND (case-insensitive).
    std::string lower = strings::to_lower(where_clause);
    std::vector<std::string> conditions;
    std::size_t start = 0;
    while (true) {
      std::size_t pos = find_keyword(lower.substr(start), "and");
      if (pos == std::string::npos) {
        conditions.emplace_back(where_clause.substr(start));
        break;
      }
      conditions.emplace_back(where_clause.substr(start, pos));
      start += pos + 3;
    }
    for (const auto& cond_raw : conditions) {
      std::string_view cond = strings::trim(cond_raw);
      if (cond.empty()) continue;
      // time comparisons: time >= N, time <= N, time > N, time < N
      if (strings::starts_with(strings::to_lower(cond), "time")) {
        std::string_view rest_cond = strings::trim(cond.substr(4));
        std::string op;
        for (char c : rest_cond) {
          if (c == '<' || c == '>' || c == '=') op += c;
          else break;
        }
        if (op.empty()) {
          return Status::parse_error("bad time condition: " +
                                     std::string(cond));
        }
        const std::string value_text =
            std::string(strings::trim(rest_cond.substr(op.size())));
        char* end = nullptr;
        const TimeNs value = std::strtoll(value_text.c_str(), &end, 10);
        if (end != value_text.c_str() + value_text.size()) {
          return Status::parse_error("bad time literal: " + value_text);
        }
        if (op == ">=") q.time_min = std::max(q.time_min, value);
        else if (op == ">") q.time_min = std::max(q.time_min, value + 1);
        else if (op == "<=") q.time_max = std::min(q.time_max, value);
        else if (op == "<") q.time_max = std::min(q.time_max, value - 1);
        else if (op == "=") { q.time_min = value; q.time_max = value; }
        else return Status::parse_error("bad time operator: " + op);
        continue;
      }
      // tag equality: name='value' or name="value"
      std::size_t eq = cond.find('=');
      if (eq == std::string_view::npos) {
        return Status::parse_error("unsupported condition: " +
                                   std::string(cond));
      }
      std::string key = strip_quotes(cond.substr(0, eq));
      std::string value = strip_quotes(cond.substr(eq + 1));
      q.tag_filters[std::move(key)] = std::move(value);
    }
  }
  return q;
}

double aggregate_values(const std::string& agg,
                        const std::vector<double>& values,
                        const std::vector<TimeNs>& times) {
  if (values.empty()) return std::nan("");
  if (agg == "count") return static_cast<double>(values.size());
  if (agg == "min") return *std::min_element(values.begin(), values.end());
  if (agg == "max") return *std::max_element(values.begin(), values.end());
  if (agg == "first") {
    auto idx = std::min_element(times.begin(), times.end()) - times.begin();
    return values[static_cast<std::size_t>(idx)];
  }
  if (agg == "last") {
    auto idx = std::max_element(times.begin(), times.end()) - times.begin();
    return values[static_cast<std::size_t>(idx)];
  }
  double sum = 0.0;
  for (double v : values) sum += v;
  if (agg == "sum") return sum;
  const double mean = sum / static_cast<double>(values.size());
  if (agg == "mean") return mean;
  if (agg == "stddev") {
    if (values.size() < 2) return 0.0;
    double acc = 0.0;
    for (double v : values) acc += (v - mean) * (v - mean);
    return std::sqrt(acc / static_cast<double>(values.size() - 1));
  }
  return std::nan("");
}

// Evaluates a parsed query over the matching points (already filtered and
// in time order).  Shared by the single-DB and sharded paths so both produce
// identical results.
Expected<QueryResult> evaluate_query(const ParsedQuery& q,
                                     const std::vector<Point>& matches) {
  // Resolve SELECT * into the union of field names, sorted.
  std::vector<Selector> selectors = q.selectors;
  if (q.select_all) {
    std::vector<std::string> fields;
    for (const Point& p : matches) {
      for (const auto& [k, v] : p.fields) {
        if (std::find(fields.begin(), fields.end(), k) == fields.end()) {
          fields.push_back(k);
        }
      }
    }
    std::sort(fields.begin(), fields.end());
    for (auto& f : fields) selectors.push_back({std::move(f), ""});
  }

  QueryResult result;
  result.columns.emplace_back("time");
  for (const auto& sel : selectors) result.columns.push_back(sel.label());

  const bool any_aggregate =
      std::any_of(selectors.begin(), selectors.end(),
                  [](const Selector& s) { return !s.aggregate.empty(); });
  if (q.group_interval > 0) {
    if (!any_aggregate) {
      return Status::parse_error(
          "GROUP BY time() requires aggregate selectors");
    }
    for (const auto& sel : selectors) {
      if (sel.aggregate.empty()) {
        return Status::parse_error(
            "cannot mix raw fields with aggregates in one query");
      }
    }
    // Bucket matches by floor(time / interval); one row per non-empty
    // bucket, stamped with the bucket start.
    std::map<TimeNs, std::vector<const Point*>> buckets;
    for (const Point& p : matches) {
      TimeNs bucket = p.time / q.group_interval * q.group_interval;
      if (p.time < 0 && p.time % q.group_interval != 0) {
        bucket -= q.group_interval;  // floor for negative timestamps
      }
      buckets[bucket].push_back(&p);
    }
    for (const auto& [bucket, points] : buckets) {
      std::vector<double> row;
      row.push_back(static_cast<double>(bucket));
      for (const auto& sel : selectors) {
        std::vector<double> values;
        std::vector<TimeNs> times;
        for (const Point* p : points) {
          auto field = p->fields.find(sel.field);
          if (field != p->fields.end()) {
            values.push_back(field->second);
            times.push_back(p->time);
          }
        }
        row.push_back(aggregate_values(sel.aggregate, values, times));
      }
      result.rows.push_back(std::move(row));
    }
    return result;
  }
  if (any_aggregate) {
    std::vector<double> row;
    row.push_back(matches.empty()
                      ? 0.0
                      : static_cast<double>(matches.back().time));
    for (const auto& sel : selectors) {
      if (sel.aggregate.empty()) {
        return Status::parse_error(
            "cannot mix raw fields with aggregates in one query");
      }
      std::vector<double> values;
      std::vector<TimeNs> times;
      for (const Point& p : matches) {
        auto field = p.fields.find(sel.field);
        if (field != p.fields.end()) {
          values.push_back(field->second);
          times.push_back(p.time);
        }
      }
      row.push_back(aggregate_values(sel.aggregate, values, times));
    }
    result.rows.push_back(std::move(row));
    return result;
  }

  result.rows.reserve(matches.size());
  for (const Point& p : matches) {
    std::vector<double> row;
    row.reserve(selectors.size() + 1);
    row.push_back(static_cast<double>(p.time));
    for (const auto& sel : selectors) {
      auto field = p.fields.find(sel.field);
      row.push_back(field == p.fields.end() ? std::nan("") : field->second);
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace

Expected<QueryResult> TimeSeriesDb::query(std::string_view text) const {
  auto parsed = parse_query(text);
  if (!parsed) return parsed.status();
  const ParsedQuery& q = parsed.value();

  if (!has_measurement(q.measurement)) {
    return Status::not_found("measurement not found: " + q.measurement);
  }
  return evaluate_query(
      q, collect(q.measurement, q.time_min, q.time_max, q.tag_filters));
}

Expected<QueryResult> query_sharded(
    const std::vector<const TimeSeriesDb*>& shards, std::string_view text) {
  auto parsed = parse_query(text);
  if (!parsed) return parsed.status();
  const ParsedQuery& q = parsed.value();

  bool found = false;
  std::vector<Point> matches;
  for (const TimeSeriesDb* shard : shards) {
    if (shard == nullptr || !shard->has_measurement(q.measurement)) continue;
    found = true;
    auto part =
        shard->collect(q.measurement, q.time_min, q.time_max, q.tag_filters);
    matches.insert(matches.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
  }
  if (!found) {
    return Status::not_found("measurement not found: " + q.measurement);
  }
  // Each shard slice is time-ordered; the union is not.  Stable sort keeps
  // shard-internal arrival order among equal timestamps.
  std::stable_sort(
      matches.begin(), matches.end(),
      [](const Point& a, const Point& b) { return a.time < b.time; });
  return evaluate_query(q, matches);
}

}  // namespace pmove::tsdb
