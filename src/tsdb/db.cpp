#include "tsdb/db.hpp"

#include <algorithm>
#include <mutex>

#include <fstream>

#include "util/strings.hpp"

namespace pmove::tsdb {

std::size_t QueryResult::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return i;
  }
  return columns.size();
}

void TimeSeriesDb::bump_epoch_locked(const std::string& measurement) {
  epochs_[measurement] = ++epoch_counter_;
}

Status TimeSeriesDb::write_batch(std::vector<Point> points) {
  for (const Point& point : points) {
    if (point.measurement.empty()) {
      return Status::invalid_argument("point missing measurement");
    }
    if (point.fields.empty()) {
      return Status::invalid_argument("point has no fields");
    }
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  // Cache the series iterator: batches overwhelmingly carry runs of points
  // for the same measurement, so most points skip the map lookup.  Track the
  // pre-append size of every touched series so ordering can be restored with
  // one tail sort + merge instead of a per-point upper_bound+insert.
  auto hint = series_.end();
  std::vector<std::pair<std::vector<Point>*, std::size_t>> touched;
  for (Point& point : points) {
    bytes_written_ += point.wire_size();
    if (hint == series_.end() || hint->first != point.measurement) {
      hint = series_.find(point.measurement);
      if (hint == series_.end()) {
        hint = series_.emplace(point.measurement, std::vector<Point>{}).first;
      }
      bump_epoch_locked(hint->first);
      auto* series = &hint->second;
      bool seen = false;
      for (const auto& [ptr, size] : touched) {
        if (ptr == series) {
          seen = true;
          break;
        }
      }
      if (!seen) touched.emplace_back(series, series->size());
    }
    hint->second.push_back(std::move(point));
  }
  // Restore time order per touched series: stable-sort the appended tail
  // (preserving arrival order among equal timestamps, matching the per-point
  // path's upper_bound semantics) and merge it with the already-ordered
  // prefix only when the tail actually lands out of order.
  const auto by_time = [](const Point& a, const Point& b) {
    return a.time < b.time;
  };
  for (const auto& [series, old_size] : touched) {
    const auto begin = series->begin();
    const auto mid = begin + static_cast<std::ptrdiff_t>(old_size);
    if (mid == series->end()) continue;
    if (!std::is_sorted(mid, series->end(), by_time)) {
      std::stable_sort(mid, series->end(), by_time);
    }
    if (old_size != 0 && by_time(*mid, *(mid - 1))) {
      std::inplace_merge(begin, mid, series->end(), by_time);
    }
  }
  return Status::ok();
}

std::size_t TimeSeriesDb::enforce_retention(TimeNs now) {
  if (retention_.duration <= 0) return 0;
  const TimeNs cutoff = now - retention_.duration;
  std::unique_lock<std::shared_mutex> lock(mutex_);
  std::size_t dropped = 0;
  for (auto& [name, points] : series_) {
    auto pos = std::lower_bound(
        points.begin(), points.end(), cutoff,
        [](const Point& p, TimeNs t) { return p.time < t; });
    const auto trimmed = static_cast<std::size_t>(pos - points.begin());
    if (trimmed == 0) continue;
    dropped += trimmed;
    points.erase(points.begin(), pos);
    bump_epoch_locked(name);
  }
  return dropped;
}

std::vector<std::string> TimeSeriesDb::measurements() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, points] : series_) out.push_back(name);
  return out;
}

std::size_t TimeSeriesDb::point_count() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [name, points] : series_) total += points.size();
  return total;
}

std::size_t TimeSeriesDb::point_count(std::string_view measurement) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = series_.find(measurement);
  return it == series_.end() ? 0 : it->second.size();
}

std::size_t TimeSeriesDb::bytes_written() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return bytes_written_;
}

bool TimeSeriesDb::has_measurement(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return series_.find(name) != series_.end();
}

std::uint64_t TimeSeriesDb::write_epoch(std::string_view measurement) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = epochs_.find(measurement);
  return it == epochs_.end() ? 0 : it->second;
}

std::vector<Point> TimeSeriesDb::collect(
    std::string_view measurement, TimeNs time_min, TimeNs time_max,
    const std::map<std::string, std::string>& tag_filters) const {
  std::vector<Point> out;
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = series_.find(measurement);
  if (it == series_.end()) return out;
  for (const Point& p : it->second) {
    if (p.time < time_min || p.time > time_max) continue;
    bool ok = true;
    for (const auto& [k, v] : tag_filters) {
      auto tag = p.tags.find(k);
      if (tag == p.tags.end() || tag->second != v) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(p);
  }
  return out;
}

Status TimeSeriesDb::dump_to_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::unavailable("cannot write " + path);
  std::shared_lock<std::shared_mutex> lock(mutex_);
  for (const auto& [name, points] : series_) {
    for (const Point& point : points) {
      out << point.to_line() << "\n";
    }
  }
  return out.good() ? Status::ok()
                    : Status::unavailable("write failed: " + path);
}

Status TimeSeriesDb::load_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::not_found("cannot open " + path);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (strings::trim(line).empty()) continue;
    if (Status s = write_line(line); !s.is_ok()) {
      return Status::parse_error(path + ":" + std::to_string(line_no) +
                                 ": " + s.message());
    }
  }
  return Status::ok();
}

void TimeSeriesDb::clear() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  series_.clear();
  // Epoch tags die with the entries; epoch_counter_ keeps counting so a
  // measurement recreated after clear() never reuses an old epoch value.
  epochs_.clear();
  bytes_written_ = 0;
}

std::size_t TimeSeriesDb::drop_measurement(std::string_view name) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = series_.find(name);
  if (it == series_.end()) return 0;
  const std::size_t dropped = it->second.size();
  if (auto epoch = epochs_.find(it->first); epoch != epochs_.end()) {
    epochs_.erase(epoch);
  }
  series_.erase(it);
  return dropped;
}

}  // namespace pmove::tsdb
