#include "tsdb/db.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <mutex>
#include <numeric>
#include <utility>

#include "metrics/names.hpp"
#include "util/strings.hpp"

namespace pmove::tsdb {

namespace {

// Decoded-tag-set lexicographic order: identical to comparing the
// materialized std::map<std::string, std::string> tag maps, so scan order
// matches the group order the seed row store produced when callers grouped
// points by their tag maps.
bool tagset_less(const TagDictionary& dict, const TagDictionary::TagSet& a,
                 const TagDictionary::TagSet& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (int c = dict.string(a[i].first).compare(dict.string(b[i].first));
        c != 0) {
      return c < 0;
    }
    if (int c = dict.string(a[i].second).compare(dict.string(b[i].second));
        c != 0) {
      return c < 0;
    }
  }
  return a.size() < b.size();
}

// Reorders v[first..first+perm.size()) to v[first + perm[i]].
template <class T>
void apply_perm(std::vector<T>& v, std::size_t first,
                const std::vector<std::uint32_t>& perm) {
  std::vector<T> tmp(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) tmp[i] = v[first + perm[i]];
  std::copy(tmp.begin(), tmp.end(), v.begin() + first);
}

// Reclaims trimmed rows once they dominate the series: retention only
// advances `head`, so the dead prefix is erased lazily when it is both big
// enough to matter and at least half the physical storage (amortized O(1)
// per trimmed row).
void maybe_compact(Series& s) {
  if (s.head < 1024 || s.head * 2 < s.times.size()) return;
  const auto n = static_cast<std::ptrdiff_t>(s.head);
  s.times.erase(s.times.begin(), s.times.begin() + n);
  s.seqs.erase(s.seqs.begin(), s.seqs.begin() + n);
  for (FieldColumn& col : s.fields) {
    col.values.erase(col.values.begin(), col.values.begin() + n);
    if (!col.present.empty()) {
      col.present.erase(col.present.begin(), col.present.begin() + n);
    }
  }
  s.head = 0;
}

// Visits every row of `slices` in merged (time, seq) order — the seed row
// store's per-measurement point order.  fn(slice_index, slice_relative_row).
template <class Fn>
void for_each_merged_row(std::span<const SeriesSlice> slices, Fn&& fn) {
  if (slices.empty()) return;
  if (slices.size() == 1) {  // one series: rows are already in order
    for (std::size_t r = 0; r < slices[0].rows(); ++r) fn(0, r);
    return;
  }
  for (const MergedRowRef& ref : merged_rows(slices)) fn(ref.slice, ref.row);
}

}  // namespace

std::size_t QueryResult::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return i;
  }
  return columns.size();
}

void TimeSeriesDb::bump_epoch_locked(const std::string& measurement) {
  epochs_[measurement] = ++epoch_counter_;
}

void TimeSeriesDb::append_row_locked(Series& series, const Point& point) {
  series.times.push_back(point.time);
  series.seqs.push_back(seq_counter_++);
  const std::size_t rows = series.times.size();
  // Merge the point's (sorted) field map into the (sorted) column vector:
  // matched columns take the value, unmatched columns take an absent NaN,
  // unseen fields open a new column backfilled with absent rows.
  std::size_t ci = 0;
  auto fit = point.fields.begin();
  while (ci < series.fields.size() || fit != point.fields.end()) {
    int cmp;
    if (ci == series.fields.size()) {
      cmp = 1;
    } else if (fit == point.fields.end()) {
      cmp = -1;
    } else {
      cmp = series.fields[ci].name.compare(fit->first);
    }
    if (cmp < 0) {  // column the point does not carry
      FieldColumn& col = series.fields[ci];
      if (col.present.empty()) col.present.assign(rows - 1, 1);
      col.present.push_back(0);
      col.values.push_back(std::nan(""));
      ++ci;
    } else if (cmp > 0) {  // field the series has not seen
      FieldColumn col;
      col.name = fit->first;
      col.values.assign(rows - 1, std::nan(""));
      col.values.push_back(fit->second);
      if (rows > 1) {
        col.present.assign(rows - 1, 0);
        col.present.push_back(1);
      }
      series.fields.insert(
          series.fields.begin() + static_cast<std::ptrdiff_t>(ci),
          std::move(col));
      ++ci;
      ++fit;
    } else {
      FieldColumn& col = series.fields[ci];
      col.values.push_back(fit->second);
      if (!col.present.empty()) col.present.push_back(1);
      ++ci;
      ++fit;
    }
  }
  ++live_points_;
}

void TimeSeriesDb::restore_order(Series& series, std::size_t old_size) {
  const std::size_t n = series.times.size();
  if (old_size == n) return;
  // Rows were appended in seq order, so the tail is (time, seq)-sorted iff
  // its times are non-decreasing, and the prefix/tail boundary only needs a
  // time comparison (every tail seq exceeds every prefix seq).
  const bool tail_sorted =
      std::is_sorted(series.times.begin() + static_cast<std::ptrdiff_t>(old_size),
                     series.times.end());
  const bool boundary_ok =
      old_size <= series.head ||
      series.times[old_size - 1] <= series.times[old_size];
  if (tail_sorted && boundary_ok) return;
  // Out-of-order tail: permutation-sort the smallest suffix of the *live*
  // region that covers every new row's destination.  Rows before `head` are
  // trimmed and must not move.
  const TimeNs min_tail = *std::min_element(
      series.times.begin() + static_cast<std::ptrdiff_t>(old_size),
      series.times.end());
  const std::size_t first = static_cast<std::size_t>(
      std::upper_bound(
          series.times.begin() + static_cast<std::ptrdiff_t>(series.head),
          series.times.begin() + static_cast<std::ptrdiff_t>(old_size),
          min_tail) -
      series.times.begin());
  std::vector<std::uint32_t> perm(n - first);
  std::iota(perm.begin(), perm.end(), 0u);
  const TimeNs* times = series.times.data() + first;
  const std::uint64_t* seqs = series.seqs.data() + first;
  std::sort(perm.begin(), perm.end(),
            [times, seqs](std::uint32_t a, std::uint32_t b) {
              if (times[a] != times[b]) return times[a] < times[b];
              return seqs[a] < seqs[b];
            });
  apply_perm(series.times, first, perm);
  apply_perm(series.seqs, first, perm);
  for (FieldColumn& col : series.fields) {
    apply_perm(col.values, first, perm);
    if (!col.present.empty()) apply_perm(col.present, first, perm);
  }
}

Series* TimeSeriesDb::resolve_series_locked(
    MeasurementStore& store, const std::map<std::string, std::string>& tags) {
  const TagDictionary::TagSetId ts = dict_.intern_set(tags);
  if (auto it = store.by_tagset.find(ts); it != store.by_tagset.end()) {
    return store.series[it->second].get();
  }
  const auto idx = static_cast<std::uint32_t>(store.series.size());
  auto series = std::make_unique<Series>();
  series->tagset_id = ts;
  Series* raw = series.get();
  store.series.push_back(std::move(series));
  store.by_tagset.emplace(ts, idx);
  auto pos = std::lower_bound(
      store.sorted.begin(), store.sorted.end(), idx,
      [this, &store](std::uint32_t a, std::uint32_t b) {
        return tagset_less(dict_, dict_.set(store.series[a]->tagset_id),
                           dict_.set(store.series[b]->tagset_id));
      });
  store.sorted.insert(pos, idx);
  return raw;
}

Status TimeSeriesDb::write_batch(std::vector<Point> points) {
  for (const Point& point : points) {
    if (point.measurement.empty()) {
      return Status::invalid_argument("point missing measurement");
    }
    if (point.fields.empty()) {
      return Status::invalid_argument("point has no fields");
    }
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  // Cache the measurement and series lookups: batches overwhelmingly carry
  // runs of points for the same measurement (and often the same tag set),
  // so most points skip the map walks entirely.  Track the pre-append size
  // of every touched series so ordering is restored once per series with a
  // permutation sort instead of per-point binary inserts.
  auto hint = series_.end();
  Series* series_hint = nullptr;
  const std::map<std::string, std::string>* hint_tags = nullptr;
  std::vector<std::pair<Series*, std::size_t>> touched;
  for (const Point& point : points) {
    bytes_written_ += point.wire_size();
    if (hint == series_.end() || hint->first != point.measurement) {
      hint = series_.find(point.measurement);
      if (hint == series_.end()) {
        hint = series_.emplace(point.measurement, MeasurementStore{}).first;
      }
      bump_epoch_locked(hint->first);
      series_hint = nullptr;
      hint_tags = nullptr;
    }
    Series* series;
    if (series_hint != nullptr && *hint_tags == point.tags) {
      series = series_hint;
    } else {
      series = resolve_series_locked(hint->second, point.tags);
      series_hint = series;
      hint_tags = &point.tags;
    }
    bool seen = false;
    for (const auto& [ptr, size] : touched) {
      if (ptr == series) {
        seen = true;
        break;
      }
    }
    if (!seen) touched.emplace_back(series, series->times.size());
    append_row_locked(*series, point);
  }
  for (const auto& [series, old_size] : touched) {
    restore_order(*series, old_size);
  }
  refresh_gauges_locked();
  return Status::ok();
}

std::size_t TimeSeriesDb::enforce_retention(TimeNs now) {
  if (retention_.duration <= 0) return 0;
  const TimeNs cutoff = now - retention_.duration;
  std::unique_lock<std::shared_mutex> lock(mutex_);
  std::size_t dropped = 0;
  for (auto& [name, store] : series_) {
    std::size_t trimmed = 0;
    for (auto& entry : store.series) {
      Series& s = *entry;
      const auto live_begin =
          s.times.begin() + static_cast<std::ptrdiff_t>(s.head);
      auto pos = std::lower_bound(live_begin, s.times.end(), cutoff);
      const auto new_head = static_cast<std::size_t>(pos - s.times.begin());
      if (new_head == s.head) continue;
      trimmed += new_head - s.head;
      s.head = new_head;
      maybe_compact(s);
    }
    if (trimmed != 0) {
      dropped += trimmed;
      bump_epoch_locked(name);
    }
  }
  live_points_ -= dropped;
  if (dropped != 0) refresh_gauges_locked();
  return dropped;
}

std::vector<std::string> TimeSeriesDb::measurements() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, store] : series_) out.push_back(name);
  return out;
}

std::size_t TimeSeriesDb::point_count() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return live_points_;
}

std::size_t TimeSeriesDb::point_count(std::string_view measurement) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = series_.find(measurement);
  if (it == series_.end()) return 0;
  std::size_t total = 0;
  for (const auto& entry : it->second.series) total += entry->row_count();
  return total;
}

std::size_t TimeSeriesDb::bytes_written() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return bytes_written_;
}

bool TimeSeriesDb::has_measurement(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return series_.find(name) != series_.end();
}

std::uint64_t TimeSeriesDb::write_epoch(std::string_view measurement) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = epochs_.find(measurement);
  return it == epochs_.end() ? 0 : it->second;
}

bool TimeSeriesDb::gather_slices_locked(
    std::string_view measurement, TimeNs time_min, TimeNs time_max,
    const std::map<std::string, std::string>& filters,
    std::vector<SeriesSlice>& out) const {
  auto it = series_.find(measurement);
  if (it == series_.end()) return false;
  // Resolve filter strings to dictionary ids once; a string the dictionary
  // has never seen cannot match any stored tag, so the scan is empty.
  std::vector<std::pair<TagDictionary::StringId, TagDictionary::StringId>>
      needed;
  needed.reserve(filters.size());
  for (const auto& [key, value] : filters) {
    const auto key_id = dict_.find(key);
    const auto value_id = dict_.find(value);
    if (!key_id.has_value() || !value_id.has_value()) return true;
    needed.emplace_back(*key_id, *value_id);
  }
  for (std::uint32_t idx : it->second.sorted) {
    const Series& s = *it->second.series[idx];
    bool ok = true;
    for (const auto& [key_id, value_id] : needed) {
      if (!dict_.set_contains(s.tagset_id, key_id, value_id)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    const auto live_begin =
        s.times.begin() + static_cast<std::ptrdiff_t>(s.head);
    auto begin = std::lower_bound(live_begin, s.times.end(), time_min);
    auto end = std::upper_bound(begin, s.times.end(), time_max);
    if (begin == end) continue;
    out.emplace_back(&s, &dict_,
                     static_cast<std::size_t>(begin - s.times.begin()),
                     static_cast<std::size_t>(end - s.times.begin()));
  }
  return true;
}

bool TimeSeriesDb::scan(std::string_view measurement, TimeNs time_min,
                        TimeNs time_max,
                        const std::map<std::string, std::string>& tag_filters,
                        const ScanCallback& visit) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<SeriesSlice> slices;
  const bool found =
      gather_slices_locked(measurement, time_min, time_max, tag_filters,
                           slices);
  visit(std::span<const SeriesSlice>(slices));
  return found;
}

std::vector<Point> TimeSeriesDb::collect(
    std::string_view measurement, TimeNs time_min, TimeNs time_max,
    const std::map<std::string, std::string>& tag_filters) const {
  std::vector<Point> out;
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<SeriesSlice> slices;
  if (!gather_slices_locked(measurement, time_min, time_max, tag_filters,
                            slices)) {
    return out;
  }
  std::size_t total = 0;
  for (const SeriesSlice& s : slices) total += s.rows();
  out.reserve(total);
  // Decode each tag set once per series, not once per point.
  std::vector<std::map<std::string, std::string>> tag_maps;
  tag_maps.reserve(slices.size());
  for (const SeriesSlice& s : slices) tag_maps.push_back(s.decode_tags());
  for_each_merged_row(
      std::span<const SeriesSlice>(slices), [&](std::size_t si,
                                                std::size_t row) {
        const SeriesSlice& slice = slices[si];
        Point p;
        p.measurement = std::string(measurement);
        p.tags = tag_maps[si];
        p.time = slice.times()[row];
        for (std::size_t f = 0; f < slice.field_count(); ++f) {
          const std::uint8_t* present = slice.present(f);
          if (present != nullptr && present[row] == 0) continue;
          // Columns are name-sorted, so insertion at the map's end is O(1).
          p.fields.emplace_hint(p.fields.end(),
                                std::string(slice.field_name(f)),
                                slice.values(f)[row]);
        }
        out.push_back(std::move(p));
      });
  return out;
}

Status TimeSeriesDb::dump_to_file(const std::string& path) const {
  // Render the whole snapshot under the shared lock, but keep the file I/O
  // outside it — a slow disk must never stall writers.
  std::string buffer;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    char value_buf[48];
    for (const auto& [name, store] : series_) {
      std::vector<SeriesSlice> slices;
      (void)gather_slices_locked(name, std::numeric_limits<TimeNs>::min(),
                                 std::numeric_limits<TimeNs>::max(), {},
                                 slices);
      // Per-series constants: the escaped "measurement,tag=v,..." prefix and
      // the escaped field names, rendered once instead of once per row.
      std::vector<std::string> prefixes;
      std::vector<std::vector<std::string>> field_names;
      prefixes.reserve(slices.size());
      field_names.reserve(slices.size());
      for (const SeriesSlice& slice : slices) {
        std::string prefix = lp::escape(name);
        for (const auto& [key_id, value_id] : slice.tagset()) {
          prefix += ',';
          prefix += lp::escape(slice.dict().string(key_id));
          prefix += '=';
          prefix += lp::escape(slice.dict().string(value_id));
        }
        prefixes.push_back(std::move(prefix));
        std::vector<std::string> names;
        names.reserve(slice.field_count());
        for (std::size_t f = 0; f < slice.field_count(); ++f) {
          names.push_back(lp::escape(std::string(slice.field_name(f))));
        }
        field_names.push_back(std::move(names));
      }
      for_each_merged_row(
          std::span<const SeriesSlice>(slices), [&](std::size_t si,
                                                    std::size_t row) {
            const SeriesSlice& slice = slices[si];
            buffer += prefixes[si];
            buffer += ' ';
            bool first = true;
            for (std::size_t f = 0; f < slice.field_count(); ++f) {
              const std::uint8_t* present = slice.present(f);
              if (present != nullptr && present[row] == 0) continue;
              if (!first) buffer += ',';
              first = false;
              buffer += field_names[si][f];
              buffer += '=';
              const int n =
                  lp::format_value(value_buf, slice.values(f)[row]);
              buffer.append(value_buf, static_cast<std::size_t>(n));
            }
            buffer += ' ';
            buffer += std::to_string(slice.times()[row]);
            buffer += '\n';
          });
    }
  }
  std::ofstream out(path);
  if (!out) return Status::unavailable("cannot write " + path);
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  return out.good() ? Status::ok()
                    : Status::unavailable("write failed: " + path);
}

Status TimeSeriesDb::load_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::not_found("cannot open " + path);
  std::string line;
  std::size_t line_no = 0;
  // Parse into batches so the columnar insert amortizes locking and
  // ordering; lines before a malformed one still land (same partial-apply
  // behavior as the old per-line path).
  constexpr std::size_t kBatch = 4096;
  std::vector<Point> batch;
  batch.reserve(kBatch);
  auto flush = [&]() -> Status {
    if (batch.empty()) return Status::ok();
    std::vector<Point> out;
    out.reserve(kBatch);
    std::swap(out, batch);
    return write_batch(std::move(out));
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (strings::trim(line).empty()) continue;
    auto point = Point::from_line(line);
    if (!point.has_value()) {
      (void)flush();
      return Status::parse_error(path + ":" + std::to_string(line_no) + ": " +
                                 point.status().message());
    }
    batch.push_back(std::move(point.value()));
    if (batch.size() >= kBatch) {
      if (Status s = flush(); !s.is_ok()) return s;
    }
  }
  return flush();
}

void TimeSeriesDb::clear() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  series_.clear();
  // Epoch tags die with the entries; epoch_counter_ keeps counting so a
  // measurement recreated after clear() never reuses an old epoch value.
  // seq_counter_ keeps counting too — old seqs are unreachable, but a
  // monotonic counter is free and immune to ABA-style ordering surprises.
  epochs_.clear();
  dict_.clear();
  bytes_written_ = 0;
  live_points_ = 0;
  refresh_gauges_locked();
}

std::size_t TimeSeriesDb::drop_measurement(std::string_view name) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = series_.find(name);
  if (it == series_.end()) return 0;
  std::size_t dropped = 0;
  for (const auto& entry : it->second.series) dropped += entry->row_count();
  if (auto epoch = epochs_.find(it->first); epoch != epochs_.end()) {
    epochs_.erase(epoch);
  }
  series_.erase(it);
  live_points_ -= dropped;
  refresh_gauges_locked();
  return dropped;
}

TsdbStats TimeSeriesDb::stats() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  TsdbStats st;
  st.measurements = series_.size();
  for (const auto& [name, store] : series_) st.series += store.series.size();
  st.points = live_points_;
  st.dict_strings = dict_.string_count();
  st.dict_tagsets = dict_.set_count();
  st.dict_bytes = dict_.memory_bytes();
  st.column_bytes = stats_column_bytes_locked();
  return st;
}

std::size_t TimeSeriesDb::stats_column_bytes_locked() const {
  std::size_t bytes = 0;
  for (const auto& [name, store] : series_) {
    for (const auto& entry : store.series) {
      const Series& s = *entry;
      bytes += s.times.size() * (sizeof(TimeNs) + sizeof(std::uint64_t));
      for (const FieldColumn& col : s.fields) {
        bytes += col.values.size() * sizeof(double) + col.present.size();
      }
    }
  }
  return bytes;
}

void TimeSeriesDb::set_telemetry_instance(const std::string& instance) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto& reg = metrics::Registry::global();
  m_series_ = &reg.gauge(metrics::kMeasurementTsdb, instance, "series");
  m_points_ = &reg.gauge(metrics::kMeasurementTsdb, instance, "points");
  m_dict_strings_ =
      &reg.gauge(metrics::kMeasurementTsdb, instance, "dict_strings");
  m_dict_bytes_ = &reg.gauge(metrics::kMeasurementTsdb, instance, "dict_bytes");
  m_column_bytes_ =
      &reg.gauge(metrics::kMeasurementTsdb, instance, "column_bytes");
  refresh_gauges_locked();
}

void TimeSeriesDb::refresh_gauges_locked() {
  if (m_series_ == nullptr) return;
  std::size_t series = 0;
  for (const auto& [name, store] : series_) series += store.series.size();
  m_series_->set(static_cast<double>(series));
  m_points_->set(static_cast<double>(live_points_));
  m_dict_strings_->set(static_cast<double>(dict_.string_count()));
  m_dict_bytes_->set(static_cast<double>(dict_.memory_bytes()));
  m_column_bytes_->set(static_cast<double>(stats_column_bytes_locked()));
}

}  // namespace pmove::tsdb
