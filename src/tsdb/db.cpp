#include "tsdb/db.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <mutex>
#include <numeric>
#include <utility>

#include "metrics/names.hpp"
#include "util/strings.hpp"

namespace pmove::tsdb {

namespace {

// Decoded-tag-set lexicographic order: identical to comparing the
// materialized std::map<std::string, std::string> tag maps, so scan order
// matches the group order the seed row store produced when callers grouped
// points by their tag maps.
bool tagset_less(const TagDictionary& dict, const TagDictionary::TagSet& a,
                 const TagDictionary::TagSet& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (int c = dict.string(a[i].first).compare(dict.string(b[i].first));
        c != 0) {
      return c < 0;
    }
    if (int c = dict.string(a[i].second).compare(dict.string(b[i].second));
        c != 0) {
      return c < 0;
    }
  }
  return a.size() < b.size();
}

// Reorders v[first..first+perm.size()) to v[first + perm[i]].
template <class T>
void apply_perm(std::vector<T>& v, std::size_t first,
                const std::vector<std::uint32_t>& perm) {
  std::vector<T> tmp(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) tmp[i] = v[first + perm[i]];
  std::copy(tmp.begin(), tmp.end(), v.begin() + first);
}

// Sorts run rows [head, end) into (time, seq) order via one permutation.
void sort_run(Run& run) {
  const std::size_t first = run.head;
  const std::size_t n = run.times.size() - first;
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  const TimeNs* times = run.times.data() + first;
  const std::uint64_t* seqs = run.seqs.data() + first;
  std::sort(perm.begin(), perm.end(),
            [times, seqs](std::uint32_t a, std::uint32_t b) {
              if (times[a] != times[b]) return times[a] < times[b];
              return seqs[a] < seqs[b];
            });
  apply_perm(run.times, first, perm);
  apply_perm(run.seqs, first, perm);
  for (FieldColumn& col : run.fields) {
    apply_perm(col.values, first, perm);
    if (!col.present.empty()) apply_perm(col.present, first, perm);
  }
  run.sorted = true;
}

// Reclaims trimmed rows once they dominate the run: retention only
// advances `head`, so the dead prefix is erased lazily when it is both big
// enough to matter and at least half the physical storage (amortized O(1)
// per trimmed row).
void maybe_compact(Run& run) {
  if (run.head < 1024 || run.head * 2 < run.times.size()) return;
  const auto n = static_cast<std::ptrdiff_t>(run.head);
  run.times.erase(run.times.begin(), run.times.begin() + n);
  run.seqs.erase(run.seqs.begin(), run.seqs.begin() + n);
  for (FieldColumn& col : run.fields) {
    col.values.erase(col.values.begin(), col.values.begin() + n);
    if (!col.present.empty()) {
      col.present.erase(col.present.begin(), col.present.begin() + n);
    }
  }
  run.head = 0;
}

// Drops the trimmed prefix unconditionally (used when a run is about to be
// moved or merged, where keeping dead rows would just copy them around).
void drop_trimmed(Run& run) {
  if (run.head == 0) return;
  const auto n = static_cast<std::ptrdiff_t>(run.head);
  run.times.erase(run.times.begin(), run.times.begin() + n);
  run.seqs.erase(run.seqs.begin(), run.seqs.begin() + n);
  for (FieldColumn& col : run.fields) {
    col.values.erase(col.values.begin(), col.values.begin() + n);
    if (!col.present.empty()) {
      col.present.erase(col.present.begin(), col.present.begin() + n);
    }
  }
  run.head = 0;
}

// Line-protocol byte cost of one point given its series' cached prefix
// width — the same arithmetic as Point::wire_size() with the invariant
// measurement+tags part precomputed.
std::size_t wire_cost(const Series& series, const Point& point) {
  std::size_t n = series.wire_prefix;
  bool first = true;
  for (const auto& [k, v] : point.fields) {
    if (!first) ++n;  // ','
    first = false;
    n += lp::escaped_size(k) + 1 + lp::value_width(v);
  }
  return n + 1 + lp::decimal_width(point.time);
}

// FNV-1a over the series key (measurement + tag strings) for the per-batch
// series memo.
std::uint64_t series_key_hash(const Point& point) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= 0xff;
    h *= 1099511628211ull;
  };
  mix(point.measurement);
  for (const auto& [k, v] : point.tags) {
    mix(k);
    mix(v);
  }
  return h;
}

}  // namespace

std::size_t QueryResult::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return i;
  }
  return columns.size();
}

void TimeSeriesDb::bump_epoch_locked(const std::string& measurement) {
  epochs_[measurement] = ++epoch_counter_;
}

void TimeSeriesDb::append_row_locked(Series& series, const Point& point) {
  Run& run = series.active;
  if (run.sorted && !run.times.empty() && point.time < run.times.back()) {
    run.sorted = false;
  }
  run.times.push_back(point.time);
  run.seqs.push_back(seq_counter_++);
  const std::size_t rows = run.times.size();
  // Merge the point's (sorted) field map into the (sorted) column vector:
  // matched columns take the value, unmatched columns take an absent NaN,
  // unseen fields open a new column backfilled with absent rows.
  std::size_t ci = 0;
  auto fit = point.fields.begin();
  while (ci < run.fields.size() || fit != point.fields.end()) {
    int cmp;
    if (ci == run.fields.size()) {
      cmp = 1;
    } else if (fit == point.fields.end()) {
      cmp = -1;
    } else {
      cmp = run.fields[ci].name.compare(fit->first);
    }
    if (cmp < 0) {  // column the point does not carry
      FieldColumn& col = run.fields[ci];
      if (col.present.empty()) col.present.assign(rows - 1, 1);
      col.present.push_back(0);
      col.values.push_back(std::nan(""));
      ++ci;
    } else if (cmp > 0) {  // field this run has not seen
      FieldColumn col;
      col.name = fit->first;
      col.values.assign(rows - 1, std::nan(""));
      col.values.push_back(fit->second);
      if (rows > 1) {
        col.present.assign(rows - 1, 0);
        col.present.push_back(1);
      }
      run.fields.insert(
          run.fields.begin() + static_cast<std::ptrdiff_t>(ci),
          std::move(col));
      ++ci;
      ++fit;
    } else {
      FieldColumn& col = run.fields[ci];
      col.values.push_back(fit->second);
      if (!col.present.empty()) col.present.push_back(1);
      ++ci;
      ++fit;
    }
  }
  ++live_points_;
}

void TimeSeriesDb::seal_active_locked(Series& series) {
  Run& run = series.active;
  if (run.empty()) return;
  drop_trimmed(run);
  if (!run.sorted) sort_run(run);
  series.sealed.push_back(std::move(run));
  series.active = Run{};
  ++run_seals_;
  // Amortized compaction: fold once sealed runs pile up or reach the
  // configured fraction of the base (each fold then grows the base
  // geometrically, bounding total copy work per row).
  const std::size_t floor = std::max(series.base.row_count(),
                                     run_config_.seal_rows);
  if (series.sealed.size() > run_config_.max_sealed ||
      static_cast<double>(series.sealed_rows()) >=
          run_config_.fold_ratio * static_cast<double>(floor)) {
    fold_series_locked(series, /*include_active=*/false);
  }
}

void TimeSeriesDb::fold_series_locked(Series& series, bool include_active) {
  std::vector<Run*> runs;
  if (!series.base.empty()) runs.push_back(&series.base);
  for (Run& r : series.sealed) {
    if (!r.empty()) runs.push_back(&r);
  }
  if (include_active && !series.active.empty()) {
    runs.push_back(&series.active);
  }
  if (runs.size() <= 1 && series.sealed.empty() &&
      (!include_active || series.active.empty())) {
    return;  // nothing to fold
  }
  for (Run* r : runs) {
    drop_trimmed(*r);
    if (!r->sorted) sort_run(*r);
  }
  ++run_folds_;
  if (runs.empty()) {
    series.base = Run{};
    series.sealed.clear();
    if (include_active) series.active = Run{};
    return;
  }

  // Order runs by first (time, seq); if they cover disjoint windows the
  // fold is a straight column concatenation (memcpy-shaped).
  std::stable_sort(runs.begin(), runs.end(), [](const Run* a, const Run* b) {
    if (a->times.front() != b->times.front()) {
      return a->times.front() < b->times.front();
    }
    return a->seqs.front() < b->seqs.front();
  });
  bool disjoint = true;
  for (std::size_t i = 0; i + 1 < runs.size(); ++i) {
    const Run* a = runs[i];
    const Run* b = runs[i + 1];
    if (a->times.back() > b->times.front() ||
        (a->times.back() == b->times.front() &&
         a->seqs.back() > b->seqs.front())) {
      disjoint = false;
      break;
    }
  }

  std::size_t total = 0;
  for (const Run* r : runs) total += r->times.size();

  // Unified field schema (union, name-sorted) and per-run column table.
  std::vector<std::string_view> names;
  for (const Run* r : runs) {
    for (const FieldColumn& col : r->fields) {
      auto it = std::lower_bound(names.begin(), names.end(),
                                 std::string_view(col.name));
      if (it == names.end() || *it != col.name) {
        names.insert(it, std::string_view(col.name));
      }
    }
  }
  std::vector<const FieldColumn*> table(names.size() * runs.size(), nullptr);
  for (std::size_t f = 0; f < names.size(); ++f) {
    for (std::size_t r = 0; r < runs.size(); ++r) {
      table[f * runs.size() + r] = runs[r]->field(names[f]);
    }
  }

  Run out;
  out.sorted = true;
  out.times.reserve(total);
  out.seqs.reserve(total);
  out.fields.resize(names.size());

  if (disjoint) {
    for (const Run* r : runs) {
      out.times.insert(out.times.end(), r->times.begin(), r->times.end());
      out.seqs.insert(out.seqs.end(), r->seqs.begin(), r->seqs.end());
    }
    for (std::size_t f = 0; f < names.size(); ++f) {
      FieldColumn& col = out.fields[f];
      col.name = std::string(names[f]);
      col.values.reserve(total);
      const bool everywhere = [&] {
        for (std::size_t r = 0; r < runs.size(); ++r) {
          const FieldColumn* src = table[f * runs.size() + r];
          if (src == nullptr || !src->all_present()) return false;
        }
        return true;
      }();
      if (!everywhere) col.present.reserve(total);
      for (std::size_t r = 0; r < runs.size(); ++r) {
        const FieldColumn* src = table[f * runs.size() + r];
        const std::size_t rows = runs[r]->times.size();
        if (src == nullptr) {
          col.values.insert(col.values.end(), rows, std::nan(""));
          if (!everywhere) col.present.insert(col.present.end(), rows, 0);
          continue;
        }
        col.values.insert(col.values.end(), src->values.begin(),
                          src->values.end());
        if (everywhere) continue;
        if (src->all_present()) {
          col.present.insert(col.present.end(), rows, 1);
        } else {
          col.present.insert(col.present.end(), src->present.begin(),
                             src->present.end());
        }
      }
    }
  } else {
    // Interleaved runs: k-way merge via one (time, seq) sort of row refs.
    struct Ref {
      TimeNs time;
      std::uint64_t seq;
      std::uint32_t run;
      std::uint32_t row;
    };
    std::vector<Ref> refs;
    refs.reserve(total);
    for (std::uint32_t r = 0; r < runs.size(); ++r) {
      const Run* run = runs[r];
      for (std::size_t i = 0; i < run->times.size(); ++i) {
        refs.push_back({run->times[i], run->seqs[i], r,
                        static_cast<std::uint32_t>(i)});
      }
    }
    std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    });
    for (const Ref& ref : refs) {
      out.times.push_back(ref.time);
      out.seqs.push_back(ref.seq);
    }
    for (std::size_t f = 0; f < names.size(); ++f) {
      FieldColumn& col = out.fields[f];
      col.name = std::string(names[f]);
      col.values.reserve(total);
      bool everywhere = true;
      for (std::size_t r = 0; r < runs.size(); ++r) {
        const FieldColumn* src = table[f * runs.size() + r];
        if (src == nullptr || !src->all_present()) {
          everywhere = false;
          break;
        }
      }
      if (!everywhere) col.present.reserve(total);
      for (const Ref& ref : refs) {
        const FieldColumn* src = table[f * runs.size() + ref.run];
        const bool present =
            src != nullptr &&
            (src->all_present() || src->present[ref.row] != 0);
        col.values.push_back(present ? src->values[ref.row] : std::nan(""));
        if (!everywhere) col.present.push_back(present ? 1 : 0);
      }
    }
  }

  series.base = std::move(out);
  series.sealed.clear();
  if (include_active) series.active = Run{};
}

Series* TimeSeriesDb::resolve_series_locked(
    MeasurementStore& store, const std::string& measurement,
    const std::map<std::string, std::string>& tags) {
  const TagDictionary::TagSetId ts = dict_.intern_set(tags);
  if (auto it = store.by_tagset.find(ts); it != store.by_tagset.end()) {
    return store.series[it->second].get();
  }
  const auto idx = static_cast<std::uint32_t>(store.series.size());
  auto series = std::make_unique<Series>();
  series->tagset_id = ts;
  std::size_t prefix = lp::escaped_size(measurement);
  for (const auto& [k, v] : tags) {
    prefix += 2 + lp::escaped_size(k) + lp::escaped_size(v);  // ',' k '=' v
  }
  series->wire_prefix = prefix + 1;  // trailing space before fields
  Series* raw = series.get();
  store.series.push_back(std::move(series));
  store.by_tagset.emplace(ts, idx);
  auto pos = std::lower_bound(
      store.sorted.begin(), store.sorted.end(), idx,
      [this, &store](std::uint32_t a, std::uint32_t b) {
        return tagset_less(dict_, dict_.set(store.series[a]->tagset_id),
                           dict_.set(store.series[b]->tagset_id));
      });
  store.sorted.insert(pos, idx);
  return raw;
}

Status TimeSeriesDb::write_batch(std::vector<Point> points) {
  for (const Point& point : points) {
    if (point.measurement.empty()) {
      return Status::invalid_argument("point missing measurement");
    }
    if (point.fields.empty()) {
      return Status::invalid_argument("point has no fields");
    }
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  ++batch_counter_;
  // Per-batch series memo: a direct-mapped hash table keyed by the point's
  // (measurement, tags) that skips the dictionary interning walk for
  // repeated tag sets — batches overwhelmingly cycle through a bounded set
  // of series.  Misses (and collisions) fall back to the full resolve.
  struct MemoSlot {
    std::uint64_t hash = 0;
    const Point* key = nullptr;
    Series* series = nullptr;
  };
  constexpr std::size_t kMemoSlots = 1024;  // power of two
  std::array<MemoSlot, kMemoSlots> memo{};
  const std::string* cur_measurement = nullptr;
  MeasurementStore* cur_store = nullptr;
  std::vector<Series*> touched;
  for (const Point& point : points) {
    if (cur_measurement == nullptr || *cur_measurement != point.measurement) {
      auto it = series_.find(point.measurement);
      if (it == series_.end()) {
        it = series_.emplace(point.measurement, MeasurementStore{}).first;
      }
      bump_epoch_locked(it->first);
      cur_measurement = &it->first;
      cur_store = &it->second;
    }
    const std::uint64_t hash = series_key_hash(point);
    MemoSlot& slot = memo[hash & (kMemoSlots - 1)];
    Series* series;
    if (slot.series != nullptr && slot.hash == hash &&
        slot.key->measurement == point.measurement &&
        slot.key->tags == point.tags) {
      series = slot.series;
    } else {
      series = resolve_series_locked(*cur_store, *cur_measurement, point.tags);
      slot = {hash, &point, series};
    }
    // O(1) touched dedup: a generation stamp instead of scanning the
    // touched list per point (which was quadratic in distinct series).
    if (series->touch_batch != batch_counter_) {
      series->touch_batch = batch_counter_;
      touched.push_back(series);
    }
    bytes_written_ += wire_cost(*series, point);
    append_row_locked(*series, point);
  }
  for (Series* series : touched) {
    if (series->active.row_count() >= run_config_.seal_rows) {
      seal_active_locked(*series);
    }
  }
  refresh_gauges_locked();
  return Status::ok();
}

std::size_t TimeSeriesDb::enforce_retention(TimeNs now) {
  if (retention_.duration <= 0) return 0;
  const TimeNs cutoff = now - retention_.duration;
  std::unique_lock<std::shared_mutex> lock(mutex_);
  std::size_t dropped = 0;
  for (auto& [name, store] : series_) {
    std::size_t trimmed = 0;
    for (auto& entry : store.series) {
      Series& s = *entry;
      const auto trim_run = [&](Run& run) {
        if (run.empty()) return;
        if (!run.sorted) sort_run(run);
        const auto live_begin =
            run.times.begin() + static_cast<std::ptrdiff_t>(run.head);
        auto pos = std::lower_bound(live_begin, run.times.end(), cutoff);
        const auto new_head = static_cast<std::size_t>(pos -
                                                       run.times.begin());
        if (new_head == run.head) return;
        trimmed += new_head - run.head;
        run.head = new_head;
        maybe_compact(run);
      };
      trim_run(s.base);
      for (Run& run : s.sealed) trim_run(run);
      trim_run(s.active);
      // Fully-trimmed sealed runs are dead weight; drop them now.
      s.sealed.erase(std::remove_if(s.sealed.begin(), s.sealed.end(),
                                    [](const Run& r) { return r.empty(); }),
                     s.sealed.end());
    }
    if (trimmed != 0) {
      dropped += trimmed;
      bump_epoch_locked(name);
    }
  }
  live_points_ -= dropped;
  if (dropped != 0) refresh_gauges_locked();
  return dropped;
}

std::size_t TimeSeriesDb::compact() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  std::size_t folded = 0;
  for (auto& [name, store] : series_) {
    for (auto& entry : store.series) {
      Series& s = *entry;
      const std::size_t loose =
          s.sealed.size() + (s.active.empty() ? 0 : 1);
      if (loose == 0) continue;
      fold_series_locked(s, /*include_active=*/true);
      folded += loose;
    }
  }
  if (folded != 0) refresh_gauges_locked();
  return folded;
}

std::vector<std::string> TimeSeriesDb::measurements() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, store] : series_) out.push_back(name);
  return out;
}

std::size_t TimeSeriesDb::point_count() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return live_points_;
}

std::size_t TimeSeriesDb::point_count(std::string_view measurement) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = series_.find(measurement);
  if (it == series_.end()) return 0;
  std::size_t total = 0;
  for (const auto& entry : it->second.series) total += entry->row_count();
  return total;
}

std::size_t TimeSeriesDb::bytes_written() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return bytes_written_;
}

bool TimeSeriesDb::has_measurement(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return series_.find(name) != series_.end();
}

std::uint64_t TimeSeriesDb::write_epoch(std::string_view measurement) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = epochs_.find(measurement);
  return it == epochs_.end() ? 0 : it->second;
}

bool TimeSeriesDb::gather_views_locked(
    std::string_view measurement, TimeNs time_min, TimeNs time_max,
    const std::map<std::string, std::string>& filters,
    std::vector<SeriesView>& out) const {
  auto it = series_.find(measurement);
  if (it == series_.end()) return false;
  // Resolve filter strings to dictionary ids once; a string the dictionary
  // has never seen cannot match any stored tag, so the scan is empty.
  std::vector<std::pair<TagDictionary::StringId, TagDictionary::StringId>>
      needed;
  needed.reserve(filters.size());
  for (const auto& [key, value] : filters) {
    const auto key_id = dict_.find(key);
    const auto value_id = dict_.find(value);
    if (!key_id.has_value() || !value_id.has_value()) return true;
    needed.emplace_back(*key_id, *value_id);
  }
  for (std::uint32_t idx : it->second.sorted) {
    const Series& s = *it->second.series[idx];
    bool ok = true;
    for (const auto& [key_id, value_id] : needed) {
      if (!dict_.set_contains(s.tagset_id, key_id, value_id)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    SeriesView view = SeriesViewBuilder::build(s, dict_, time_min, time_max);
    if (view.rows() == 0) continue;
    out.push_back(std::move(view));
  }
  return true;
}

bool TimeSeriesDb::scan(std::string_view measurement, TimeNs time_min,
                        TimeNs time_max,
                        const std::map<std::string, std::string>& tag_filters,
                        const ScanCallback& visit) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<SeriesView> views;
  const bool found =
      gather_views_locked(measurement, time_min, time_max, tag_filters,
                          views);
  visit(std::span<const SeriesView>(views));
  return found;
}

std::vector<Point> TimeSeriesDb::collect(
    std::string_view measurement, TimeNs time_min, TimeNs time_max,
    const std::map<std::string, std::string>& tag_filters) const {
  std::vector<Point> out;
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<SeriesView> views;
  if (!gather_views_locked(measurement, time_min, time_max, tag_filters,
                           views)) {
    return out;
  }
  std::size_t total = 0;
  for (const SeriesView& v : views) total += v.rows();
  out.reserve(total);
  // Decode each tag set once per series, not once per point.
  std::vector<std::map<std::string, std::string>> tag_maps;
  tag_maps.reserve(views.size());
  for (const SeriesView& v : views) tag_maps.push_back(v.decode_tags());
  for (const ViewRow& ref : merged_view_rows(views)) {
    const SeriesView& view = views[ref.view];
    Point p;
    p.measurement = std::string(measurement);
    p.tags = tag_maps[ref.view];
    p.time = ref.time;
    for (std::size_t f = 0; f < view.field_count(); ++f) {
      if (!view.has_value(f, ref.loc)) continue;
      // Fields are name-sorted, so insertion at the map's end is O(1).
      p.fields.emplace_hint(p.fields.end(), std::string(view.field_name(f)),
                            view.value_at(f, ref.loc));
    }
    out.push_back(std::move(p));
  }
  return out;
}

Status TimeSeriesDb::dump_to_file(const std::string& path) const {
  // Render the whole snapshot under the shared lock, but keep the file I/O
  // outside it — a slow disk must never stall writers.
  std::string buffer;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    char value_buf[48];
    for (const auto& [name, store] : series_) {
      std::vector<SeriesView> views;
      (void)gather_views_locked(name, std::numeric_limits<TimeNs>::min(),
                                std::numeric_limits<TimeNs>::max(), {},
                                views);
      // Per-series constants: the escaped "measurement,tag=v,..." prefix and
      // the escaped field names, rendered once instead of once per row.
      std::vector<std::string> prefixes;
      std::vector<std::vector<std::string>> field_names;
      prefixes.reserve(views.size());
      field_names.reserve(views.size());
      for (const SeriesView& view : views) {
        std::string prefix = lp::escape(name);
        for (const auto& [key_id, value_id] : view.tagset()) {
          prefix += ',';
          prefix += lp::escape(view.dict().string(key_id));
          prefix += '=';
          prefix += lp::escape(view.dict().string(value_id));
        }
        prefixes.push_back(std::move(prefix));
        std::vector<std::string> names;
        names.reserve(view.field_count());
        for (std::size_t f = 0; f < view.field_count(); ++f) {
          names.push_back(lp::escape(std::string(view.field_name(f))));
        }
        field_names.push_back(std::move(names));
      }
      for (const ViewRow& ref : merged_view_rows(views)) {
        const SeriesView& view = views[ref.view];
        buffer += prefixes[ref.view];
        buffer += ' ';
        bool first = true;
        for (std::size_t f = 0; f < view.field_count(); ++f) {
          if (!view.has_value(f, ref.loc)) continue;
          if (!first) buffer += ',';
          first = false;
          buffer += field_names[ref.view][f];
          buffer += '=';
          const int n =
              lp::format_value(value_buf, view.value_at(f, ref.loc));
          buffer.append(value_buf, static_cast<std::size_t>(n));
        }
        buffer += ' ';
        buffer += std::to_string(ref.time);
        buffer += '\n';
      }
    }
  }
  std::ofstream out(path);
  if (!out) return Status::unavailable("cannot write " + path);
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  return out.good() ? Status::ok()
                    : Status::unavailable("write failed: " + path);
}

Status TimeSeriesDb::load_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::not_found("cannot open " + path);
  std::string line;
  std::size_t line_no = 0;
  // Parse into batches so the columnar insert amortizes locking and
  // ordering; lines before a malformed one still land (same partial-apply
  // behavior as the old per-line path).
  constexpr std::size_t kBatch = 4096;
  std::vector<Point> batch;
  batch.reserve(kBatch);
  auto flush = [&]() -> Status {
    if (batch.empty()) return Status::ok();
    std::vector<Point> out;
    out.reserve(kBatch);
    std::swap(out, batch);
    return write_batch(std::move(out));
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (strings::trim(line).empty()) continue;
    auto point = Point::from_line(line);
    if (!point.has_value()) {
      (void)flush();
      return Status::parse_error(path + ":" + std::to_string(line_no) + ": " +
                                 point.status().message());
    }
    batch.push_back(std::move(point.value()));
    if (batch.size() >= kBatch) {
      if (Status s = flush(); !s.is_ok()) return s;
    }
  }
  return flush();
}

void TimeSeriesDb::clear() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  series_.clear();
  // Epoch tags die with the entries; epoch_counter_ keeps counting so a
  // measurement recreated after clear() never reuses an old epoch value.
  // seq_counter_ keeps counting too — old seqs are unreachable, but a
  // monotonic counter is free and immune to ABA-style ordering surprises.
  epochs_.clear();
  dict_.clear();
  bytes_written_ = 0;
  live_points_ = 0;
  refresh_gauges_locked();
}

std::size_t TimeSeriesDb::drop_measurement(std::string_view name) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = series_.find(name);
  if (it == series_.end()) return 0;
  std::size_t dropped = 0;
  for (const auto& entry : it->second.series) dropped += entry->row_count();
  if (auto epoch = epochs_.find(it->first); epoch != epochs_.end()) {
    epochs_.erase(epoch);
  }
  series_.erase(it);
  live_points_ -= dropped;
  refresh_gauges_locked();
  return dropped;
}

std::size_t TimeSeriesDb::drop_series(
    std::string_view measurement,
    const std::map<std::string, std::string>& tags) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = series_.find(measurement);
  if (it == series_.end()) return 0;
  MeasurementStore& store = it->second;
  std::size_t victim = store.series.size();
  for (std::size_t i = 0; i < store.series.size(); ++i) {
    const TagDictionary::TagSet& set = dict_.set(store.series[i]->tagset_id);
    if (set.size() != tags.size()) continue;
    bool match = true;
    auto tag = tags.begin();
    for (const auto& [key_id, value_id] : set) {
      if (dict_.string(key_id) != tag->first ||
          dict_.string(value_id) != tag->second) {
        match = false;
        break;
      }
      ++tag;
    }
    if (match) {
      victim = i;
      break;
    }
  }
  if (victim == store.series.size()) return 0;
  const std::size_t dropped = store.series[victim]->row_count();
  store.series.erase(store.series.begin() +
                     static_cast<std::ptrdiff_t>(victim));
  // Indices past the victim shifted down; rebuild both index structures.
  store.by_tagset.clear();
  store.sorted.clear();
  for (std::uint32_t i = 0; i < store.series.size(); ++i) {
    store.by_tagset.emplace(store.series[i]->tagset_id, i);
    store.sorted.push_back(i);
  }
  std::sort(store.sorted.begin(), store.sorted.end(),
            [this, &store](std::uint32_t a, std::uint32_t b) {
              return tagset_less(dict_, dict_.set(store.series[a]->tagset_id),
                                 dict_.set(store.series[b]->tagset_id));
            });
  bump_epoch_locked(it->first);
  live_points_ -= dropped;
  refresh_gauges_locked();
  return dropped;
}

TsdbStats TimeSeriesDb::stats() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  TsdbStats st;
  st.measurements = series_.size();
  for (const auto& [name, store] : series_) {
    st.series += store.series.size();
    for (const auto& entry : store.series) {
      st.sealed_runs += entry->sealed.size();
      st.active_rows += entry->active.row_count();
    }
  }
  st.points = live_points_;
  st.dict_strings = dict_.string_count();
  st.dict_tagsets = dict_.set_count();
  st.dict_bytes = dict_.memory_bytes();
  st.column_bytes = stats_column_bytes_locked();
  st.run_seals = run_seals_;
  st.run_folds = run_folds_;
  return st;
}

RunConfig TimeSeriesDb::run_config() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return run_config_;
}

void TimeSeriesDb::set_run_config(const RunConfig& config) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  run_config_ = config;
  if (run_config_.seal_rows == 0) run_config_.seal_rows = 1;
  if (run_config_.max_sealed == 0) run_config_.max_sealed = 1;
  if (run_config_.fold_ratio <= 0.0) run_config_.fold_ratio = 0.5;
}

std::size_t TimeSeriesDb::stats_column_bytes_locked() const {
  std::size_t bytes = 0;
  const auto run_bytes = [](const Run& run) {
    std::size_t n =
        run.times.size() * (sizeof(TimeNs) + sizeof(std::uint64_t));
    for (const FieldColumn& col : run.fields) {
      n += col.values.size() * sizeof(double) + col.present.size();
    }
    return n;
  };
  for (const auto& [name, store] : series_) {
    for (const auto& entry : store.series) {
      const Series& s = *entry;
      bytes += run_bytes(s.base) + run_bytes(s.active);
      for (const Run& run : s.sealed) bytes += run_bytes(run);
    }
  }
  return bytes;
}

void TimeSeriesDb::set_telemetry_instance(const std::string& instance) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto& reg = metrics::Registry::global();
  m_series_ = &reg.gauge(metrics::kMeasurementTsdb, instance, "series");
  m_points_ = &reg.gauge(metrics::kMeasurementTsdb, instance, "points");
  m_dict_strings_ =
      &reg.gauge(metrics::kMeasurementTsdb, instance, "dict_strings");
  m_dict_bytes_ = &reg.gauge(metrics::kMeasurementTsdb, instance, "dict_bytes");
  m_column_bytes_ =
      &reg.gauge(metrics::kMeasurementTsdb, instance, "column_bytes");
  m_sealed_runs_ =
      &reg.gauge(metrics::kMeasurementTsdb, instance, "sealed_runs");
  m_run_seals_ = &reg.gauge(metrics::kMeasurementTsdb, instance, "run_seals");
  m_run_folds_ = &reg.gauge(metrics::kMeasurementTsdb, instance, "run_folds");
  refresh_gauges_locked();
}

void TimeSeriesDb::refresh_gauges_locked() {
  if (m_series_ == nullptr) return;
  std::size_t series = 0;
  std::size_t sealed_runs = 0;
  for (const auto& [name, store] : series_) {
    series += store.series.size();
    for (const auto& entry : store.series) sealed_runs += entry->sealed.size();
  }
  m_series_->set(static_cast<double>(series));
  m_points_->set(static_cast<double>(live_points_));
  m_dict_strings_->set(static_cast<double>(dict_.string_count()));
  m_dict_bytes_->set(static_cast<double>(dict_.memory_bytes()));
  m_column_bytes_->set(static_cast<double>(stats_column_bytes_locked()));
  m_sealed_runs_->set(static_cast<double>(sealed_runs));
  m_run_seals_->set(static_cast<double>(run_seals_));
  m_run_folds_->set(static_cast<double>(run_folds_));
}

}  // namespace pmove::tsdb
