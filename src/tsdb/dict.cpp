#include "tsdb/dict.hpp"

namespace pmove::tsdb {

TagDictionary::StringId TagDictionary::intern(std::string_view s) {
  if (auto it = ids_.find(s); it != ids_.end()) return it->second;
  const StringId id = static_cast<StringId>(strings_.size());
  strings_.emplace_back(s);
  ids_.emplace(strings_.back(), id);
  // The map node holds a second copy of the string; count both plus the
  // id payload so the gauge tracks what interning actually costs.
  memory_bytes_ += 2 * s.size() + sizeof(StringId);
  return id;
}

std::optional<TagDictionary::StringId> TagDictionary::find(
    std::string_view s) const {
  if (auto it = ids_.find(s); it != ids_.end()) return it->second;
  return std::nullopt;
}

TagDictionary::TagSetId TagDictionary::intern_set(
    const std::map<std::string, std::string>& tags) {
  TagSet set;
  set.reserve(tags.size());
  for (const auto& [k, v] : tags) {
    set.emplace_back(intern(k), intern(v));
  }
  if (auto it = set_ids_.find(set); it != set_ids_.end()) return it->second;
  const TagSetId id = static_cast<TagSetId>(sets_.size());
  memory_bytes_ += 2 * set.size() * sizeof(std::pair<StringId, StringId>);
  sets_.push_back(set);
  set_ids_.emplace(std::move(set), id);
  return id;
}

std::map<std::string, std::string> TagDictionary::decode(TagSetId id) const {
  std::map<std::string, std::string> tags;
  for (const auto& [k, v] : sets_[id]) {
    tags.emplace(strings_[k], strings_[v]);
  }
  return tags;
}

void TagDictionary::clear() {
  strings_.clear();
  ids_.clear();
  sets_.clear();
  set_ids_.clear();
  memory_bytes_ = 0;
  (void)intern_set({});
}

}  // namespace pmove::tsdb
