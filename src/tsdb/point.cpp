#include "tsdb/point.hpp"

#include <cmath>
#include <cstdio>

#include "util/strings.hpp"

namespace pmove::tsdb {

namespace {

// Line-protocol escaping: commas, spaces and '=' in identifiers.
std::string escape_ident(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == ',' || c == ' ' || c == '=') out += '\\';
    out += c;
  }
  return out;
}

std::string unescape(std::string_view s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) ++i;
    out += s[i];
  }
  return out;
}

// Splits on `sep` respecting backslash escapes.
std::vector<std::string> split_escaped(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      current += text[i];
      current += text[i + 1];
      ++i;
    } else if (text[i] == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += text[i];
    }
  }
  parts.push_back(current);
  return parts;
}

std::string format_field_value(double v) {
  if (v == std::floor(v) && std::abs(v) < 9.2e18 && !std::signbit(v) == !std::signbit(v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string Point::to_line() const {
  std::string out = escape_ident(measurement);
  for (const auto& [k, v] : tags) {
    out += ',';
    out += escape_ident(k);
    out += '=';
    out += escape_ident(v);
  }
  out += ' ';
  bool first = true;
  for (const auto& [k, v] : fields) {
    if (!first) out += ',';
    first = false;
    out += escape_ident(k);
    out += '=';
    out += format_field_value(v);
  }
  out += ' ';
  out += std::to_string(time);
  return out;
}

Expected<Point> Point::from_line(std::string_view line) {
  line = strings::trim(line);
  if (line.empty()) return Status::parse_error("empty line-protocol line");

  // Split into up to 3 space-separated sections (escaped spaces respected).
  std::vector<std::string> sections;
  std::string current;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      current += line[i];
      current += line[i + 1];
      ++i;
    } else if (line[i] == ' ' && sections.size() < 2) {
      sections.push_back(current);
      current.clear();
    } else {
      current += line[i];
    }
  }
  sections.push_back(current);
  if (sections.size() < 2) {
    return Status::parse_error("line protocol needs measurement and fields");
  }

  Point point;
  auto head = split_escaped(sections[0], ',');
  point.measurement = unescape(head[0]);
  if (point.measurement.empty()) {
    return Status::parse_error("empty measurement name");
  }
  for (std::size_t i = 1; i < head.size(); ++i) {
    auto kv = split_escaped(head[i], '=');
    if (kv.size() != 2) return Status::parse_error("malformed tag: " + head[i]);
    point.tags[unescape(kv[0])] = unescape(kv[1]);
  }
  for (const auto& field : split_escaped(sections[1], ',')) {
    auto kv = split_escaped(field, '=');
    if (kv.size() != 2) {
      return Status::parse_error("malformed field: " + field);
    }
    char* end = nullptr;
    const std::string value_text = unescape(kv[1]);
    double value = std::strtod(value_text.c_str(), &end);
    if (end != value_text.c_str() + value_text.size()) {
      return Status::parse_error("non-numeric field value: " + value_text);
    }
    point.fields[unescape(kv[0])] = value;
  }
  if (point.fields.empty()) return Status::parse_error("no fields in line");
  if (sections.size() == 3) {
    const std::string ts = std::string(strings::trim(sections[2]));
    if (!ts.empty()) {
      char* end = nullptr;
      point.time = std::strtoll(ts.c_str(), &end, 10);
      if (end != ts.c_str() + ts.size()) {
        return Status::parse_error("bad timestamp: " + ts);
      }
    }
  }
  return point;
}

}  // namespace pmove::tsdb
