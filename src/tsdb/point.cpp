#include "tsdb/point.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/strings.hpp"

namespace pmove::tsdb {

namespace {

// Line-protocol escaping: commas, spaces, '=' and backslashes in
// identifiers.  Backslashes must be escaped too, or an identifier ending in
// '\' would swallow the following separator and break the round trip.
bool needs_escape(char c) {
  return c == ',' || c == ' ' || c == '=' || c == '\\';
}

std::string escape_ident(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (needs_escape(c)) out += '\\';
    out += c;
  }
  return out;
}

std::size_t escaped_size_impl(std::string_view s) {
  std::size_t n = s.size();
  for (char c : s) {
    if (needs_escape(c)) ++n;
  }
  return n;
}

std::string unescape(std::string_view s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) ++i;
    out += s[i];
  }
  return out;
}

// Splits on `sep` respecting backslash escapes.
std::vector<std::string> split_escaped(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      current += text[i];
      current += text[i + 1];
      ++i;
    } else if (text[i] == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += text[i];
    }
  }
  parts.push_back(current);
  return parts;
}

// Non-integral values render via std::to_chars: the shortest decimal form
// that round-trips through strtod to the same double.  Exactness is what
// to_line()/from_line() need; shortness keeps dumps small; and to_chars is
// an order of magnitude cheaper than the snprintf("%.17g") it replaced,
// which dominated the per-point write cost (wire-byte accounting).
int format_field_value(char (&buf)[48], double v) {
  if (v == std::floor(v) && std::abs(v) < 9.2e18) {
    return std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  }
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;  // 48 bytes always suffice for the shortest double form
  return static_cast<int>(ptr - buf);
}

// Width of the "%lld" rendering without the snprintf call — wire_size() runs
// for every ingested point, and formatting just to count bytes dominated the
// insert path.
std::size_t decimal_width_impl(long long value) {
  std::size_t n = value < 0 ? 1 : 0;
  auto u = value < 0 ? 0ull - static_cast<unsigned long long>(value)
                     : static_cast<unsigned long long>(value);
  do {
    ++n;
    u /= 10;
  } while (u != 0);
  return n;
}

std::size_t field_value_width(double v) {
  if (v == std::floor(v) && std::abs(v) < 9.2e18) {
    return decimal_width_impl(static_cast<long long>(v));
  }
  char buf[48];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  return static_cast<std::size_t>(ptr - buf);
}

}  // namespace

namespace lp {

std::string escape(const std::string& s) { return escape_ident(s); }

std::size_t escaped_size(std::string_view s) { return escaped_size_impl(s); }

int format_value(char (&buf)[48], double v) {
  return format_field_value(buf, v);
}

std::size_t value_width(double v) { return field_value_width(v); }

std::size_t decimal_width(long long value) {
  return decimal_width_impl(value);
}

}  // namespace lp

std::string Point::to_line() const {
  std::string out = escape_ident(measurement);
  for (const auto& [k, v] : tags) {
    out += ',';
    out += escape_ident(k);
    out += '=';
    out += escape_ident(v);
  }
  out += ' ';
  bool first = true;
  char buf[48];
  for (const auto& [k, v] : fields) {
    if (!first) out += ',';
    first = false;
    out += escape_ident(k);
    out += '=';
    out.append(buf, static_cast<std::size_t>(format_field_value(buf, v)));
  }
  out += ' ';
  out += std::to_string(time);
  return out;
}

std::size_t Point::wire_size() const {
  // Same arithmetic as to_line(), but without materializing the string —
  // the hot write paths account bytes for every point (Fig 6 resource
  // model), so this must not allocate.
  std::size_t n = escaped_size_impl(measurement);
  for (const auto& [k, v] : tags) {
    n += 2 + escaped_size_impl(k) + escaped_size_impl(v);  // ',' k '=' v
  }
  n += 1;  // space before fields
  bool first = true;
  for (const auto& [k, v] : fields) {
    if (!first) ++n;  // ','
    first = false;
    n += escaped_size_impl(k) + 1 + field_value_width(v);
  }
  n += 1 + decimal_width_impl(time);
  return n;
}

Expected<Point> Point::from_line(std::string_view line) {
  line = strings::trim(line);
  if (line.empty()) return Status::parse_error("empty line-protocol line");

  // Split into up to 3 space-separated sections (escaped spaces respected).
  std::vector<std::string> sections;
  std::string current;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      current += line[i];
      current += line[i + 1];
      ++i;
    } else if (line[i] == ' ' && sections.size() < 2) {
      sections.push_back(current);
      current.clear();
    } else {
      current += line[i];
    }
  }
  sections.push_back(current);
  if (sections.size() < 2) {
    return Status::parse_error("line protocol needs measurement and fields");
  }

  Point point;
  auto head = split_escaped(sections[0], ',');
  point.measurement = unescape(head[0]);
  if (point.measurement.empty()) {
    return Status::parse_error("empty measurement name");
  }
  for (std::size_t i = 1; i < head.size(); ++i) {
    auto kv = split_escaped(head[i], '=');
    if (kv.size() != 2) return Status::parse_error("malformed tag: " + head[i]);
    std::string key = unescape(kv[0]);
    if (key.empty()) return Status::parse_error("empty tag key: " + head[i]);
    point.tags[std::move(key)] = unescape(kv[1]);
  }
  for (const auto& field : split_escaped(sections[1], ',')) {
    auto kv = split_escaped(field, '=');
    if (kv.size() != 2) {
      return Status::parse_error("malformed field: " + field);
    }
    if (unescape(kv[0]).empty()) {
      return Status::parse_error("empty field name: " + field);
    }
    char* end = nullptr;
    const std::string value_text = unescape(kv[1]);
    double value = std::strtod(value_text.c_str(), &end);
    if (end != value_text.c_str() + value_text.size()) {
      return Status::parse_error("non-numeric field value: " + value_text);
    }
    point.fields[unescape(kv[0])] = value;
  }
  if (point.fields.empty()) return Status::parse_error("no fields in line");
  if (sections.size() == 3) {
    const std::string ts = std::string(strings::trim(sections[2]));
    if (!ts.empty()) {
      char* end = nullptr;
      point.time = std::strtoll(ts.c_str(), &end, 10);
      if (end != ts.c_str() + ts.size()) {
        return Status::parse_error("bad timestamp: " + ts);
      }
    }
  }
  return point;
}

}  // namespace pmove::tsdb
