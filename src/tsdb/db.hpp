// In-memory time-series database (InfluxDB 1.x substrate).
//
// Stores points per measurement, supports the query subset the KB generates
// (Listing 3 of the paper):
//
//   SELECT "_cpu0", "_cpu1" FROM "kernel_percpu_cpu_idle"
//     WHERE tag="278e26c2-..." [AND time >= a AND time <= b]
//
// plus aggregate selectors (mean/min/max/sum/count/stddev/first/last) needed
// by SUPERDB's AGGObservationInterface, and a retention policy (Section V-B:
// "we rely on the retention policy of InfluxDB").  Thread-safe writes: the
// sampler pipeline inserts from its own thread.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "tsdb/point.hpp"
#include "tsdb/sink.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace pmove::tsdb {

struct QueryResult {
  /// "time" followed by the selected field names (or "agg(field)" labels).
  std::vector<std::string> columns;
  /// One row per matching point (or a single row for aggregate queries);
  /// row[0] is the timestamp, NaN marks a missing field.
  std::vector<std::vector<double>> rows;

  [[nodiscard]] std::size_t column_index(std::string_view name) const;
};

/// Retention policy: points older than `duration` (relative to the max time
/// in the DB or an explicit "now") are dropped by enforce_retention().
struct RetentionPolicy {
  TimeNs duration = 0;  ///< 0 = keep forever
};

class TimeSeriesDb : public PointSink {
 public:
  TimeSeriesDb() = default;
  explicit TimeSeriesDb(RetentionPolicy retention)
      : retention_(retention) {}

  Status write(Point point) override;
  Status write_line(std::string_view line);

  /// Bulk insert: one lock acquisition and one ordering pass per batch
  /// instead of per point.  The batch is validated up front and rejected as
  /// a unit if any point is invalid (no partial insert).
  Status write_batch(std::vector<Point> points) override;

  /// Executes a query string (see header comment for the grammar subset).
  [[nodiscard]] Expected<QueryResult> query(std::string_view text) const;

  /// Drops points older than the retention window; returns #dropped.
  std::size_t enforce_retention(TimeNs now);

  [[nodiscard]] std::vector<std::string> measurements() const;
  [[nodiscard]] std::size_t point_count() const;
  [[nodiscard]] std::size_t point_count(std::string_view measurement) const;

  /// Total bytes written in line-protocol form (disk-usage accounting).
  [[nodiscard]] std::size_t bytes_written() const { return bytes_written_; }

  /// Recorded-data support (the paper monitors "live and/or recorded"
  /// performance data): dump every point as line protocol, one per line,
  /// and load such a file back (appending to current contents).
  Status dump_to_file(const std::string& path) const;
  Status load_from_file(const std::string& path);

  void clear();

  [[nodiscard]] bool has_measurement(std::string_view name) const;

  /// Copies of the points of `measurement` in [time_min, time_max] whose
  /// tags match every entry of `tag_filters`, in time order.  Used by the
  /// sharded query path (query_sharded) to pull per-shard slices.
  [[nodiscard]] std::vector<Point> collect(
      std::string_view measurement, TimeNs time_min, TimeNs time_max,
      const std::map<std::string, std::string>& tag_filters) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<Point>, std::less<>> series_;
  RetentionPolicy retention_;
  std::size_t bytes_written_ = 0;
};

/// Executes `text` against several shard databases as if their contents
/// lived in one DB: matching points are collected from every shard, merged
/// in time order, and evaluated together (aggregates and GROUP BY included),
/// so results are identical to a single-DB query over the union.
Expected<QueryResult> query_sharded(
    const std::vector<const TimeSeriesDb*>& shards, std::string_view text);

}  // namespace pmove::tsdb
