// In-memory time-series database (InfluxDB 1.x substrate).
//
// Stores points per measurement, supports the query subset the KB generates
// (Listing 3 of the paper):
//
//   SELECT "_cpu0", "_cpu1" FROM "kernel_percpu_cpu_idle"
//     WHERE tag="278e26c2-..." [AND time >= a AND time <= b]
//
// plus aggregate selectors (mean/min/max/sum/count/stddev/first/last) needed
// by SUPERDB's AGGObservationInterface, and a retention policy (Section V-B:
// "we rely on the retention policy of InfluxDB").
//
// Concurrency: storage is guarded by a shared_mutex — any number of panel
// readers (collect/point_count/...) proceed in parallel and only writers
// (write_batch, retention, clear) take the lock exclusively.  Every write
// bumps the touched measurement's *write epoch*, a never-repeating global
// counter the query engine's result cache keys its invalidation on.
//
// The read path lives in src/query (parse → plan → execute, result cache,
// downsample pushdown); this class only stores points and hands out
// filtered copies via collect().
#pragma once

#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "tsdb/point.hpp"
#include "tsdb/sink.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace pmove::tsdb {

struct QueryResult {
  /// "time" followed by the selected field names (or "agg(field)" labels).
  std::vector<std::string> columns;
  /// One row per matching point (or a single row for aggregate queries);
  /// row[0] is the timestamp, NaN marks a missing field.
  std::vector<std::vector<double>> rows;

  [[nodiscard]] std::size_t column_index(std::string_view name) const;
};

/// Retention policy: points older than `duration` (relative to the max time
/// in the DB or an explicit "now") are dropped by enforce_retention().
struct RetentionPolicy {
  TimeNs duration = 0;  ///< 0 = keep forever
};

class TimeSeriesDb : public PointSink {
 public:
  TimeSeriesDb() = default;
  explicit TimeSeriesDb(RetentionPolicy retention)
      : retention_(retention) {}

  /// Bulk insert: one lock acquisition and one ordering pass per batch
  /// instead of per point.  The batch is validated up front and rejected as
  /// a unit if any point is invalid (no partial insert).  Bumps the write
  /// epoch of every touched measurement.  (Single points and line protocol
  /// go through the PointSink write()/write_line() helpers.)
  Status write_batch(std::vector<Point> points) override;

  /// DEPRECATED: legacy string read path, kept as a thin parse-then-run
  /// wrapper for line-protocol compatibility.  New callers should build a
  /// typed query::Query (query/query.hpp) and execute it with query::run()
  /// or through a query::QueryEngine, which adds result caching and
  /// downsample pushdown.  Defined in src/query/compat.cpp — callers must
  /// link pmove_query.
  [[nodiscard]] Expected<QueryResult> query(std::string_view text) const;

  /// Drops points older than the retention window; returns #dropped.
  std::size_t enforce_retention(TimeNs now);

  [[nodiscard]] std::vector<std::string> measurements() const;
  [[nodiscard]] std::size_t point_count() const;
  [[nodiscard]] std::size_t point_count(std::string_view measurement) const;

  /// Total bytes written in line-protocol form (disk-usage accounting).
  [[nodiscard]] std::size_t bytes_written() const;

  /// Recorded-data support (the paper monitors "live and/or recorded"
  /// performance data): dump every point as line protocol, one per line,
  /// and load such a file back (appending to current contents).
  Status dump_to_file(const std::string& path) const;
  Status load_from_file(const std::string& path);

  void clear();

  /// Removes one measurement entirely; returns the number of dropped
  /// points.  Used by the query engine to re-materialize downsample
  /// targets.
  std::size_t drop_measurement(std::string_view name);

  [[nodiscard]] bool has_measurement(std::string_view name) const;

  /// Write epoch of a measurement: 0 while absent, otherwise a globally
  /// monotonic value that changes on every mutation (write_batch,
  /// retention trim, drop+recreate) and never repeats — so a cached query
  /// result tagged with the epoch observed *before* its scan is valid
  /// exactly while the value is unchanged.
  [[nodiscard]] std::uint64_t write_epoch(std::string_view measurement) const;

  /// Copies of the points of `measurement` in [time_min, time_max] whose
  /// tags match every entry of `tag_filters`, in time order.  The read
  /// primitive of the query module's execute stage (and of the sharded
  /// path, which pulls per-shard slices).
  [[nodiscard]] std::vector<Point> collect(
      std::string_view measurement, TimeNs time_min, TimeNs time_max,
      const std::map<std::string, std::string>& tag_filters) const;

 private:
  /// Bumps `measurement`'s epoch; caller holds the exclusive lock.
  void bump_epoch_locked(const std::string& measurement);

  mutable std::shared_mutex mutex_;
  std::map<std::string, std::vector<Point>, std::less<>> series_;
  std::map<std::string, std::uint64_t, std::less<>> epochs_;
  std::uint64_t epoch_counter_ = 0;  ///< never reset, so epochs never repeat
  RetentionPolicy retention_;
  std::size_t bytes_written_ = 0;
};

/// DEPRECATED alongside TimeSeriesDb::query — use query::run_sharded with a
/// typed query::Query.  Defined in src/query/compat.cpp (link pmove_query).
Expected<QueryResult> query_sharded(
    const std::vector<const TimeSeriesDb*>& shards, std::string_view text);

}  // namespace pmove::tsdb
