// In-memory time-series database (InfluxDB 1.x substrate) — columnar engine
// with an LSM-style write path.
//
// Stores points per (measurement, interned tag set) in columnar form: each
// series is a small LSM tree of runs (tsdb/columns.hpp) — a sorted base, a
// bounded list of sealed sorted runs, and an arrival-order active run — so
// a batch write is a pure column append.  Ordering is restored lazily: the
// active run is sorted once when it is sealed at PMOVE_TSDB_RUN_ROWS rows,
// and an amortized compactor folds sealed runs into the base (triggered at
// seal time by run count / size ratio, or explicitly via compact()).  Tag
// strings live once in a per-DB dictionary (tsdb/dict.hpp), so tag
// filtering is integer comparison; time-range pruning is a binary search
// per sorted run; retention trims advance per-run head offsets with
// amortized compaction.
//
// Read paths:
//   * scan()    — the zero-copy primitive: hands the caller a SeriesView
//                 cursor per matching series under the shared lock.  Views
//                 present one logical (time, seq)-ordered row sequence and
//                 hide the run structure entirely — query, fleet and bench
//                 code never learn that runs exist.
//   * collect() — compatibility wrapper that materializes Points from the
//                 views for legacy callers (and the sharded merge path).
//
// Ordering: rows are merged by (time, arrival seq), the same total order
// the seed row store maintained, so scans reproduce the seed's point
// order — and therefore its floating-point aggregation order — bit for
// bit, regardless of how rows are distributed across runs.
//
// Concurrency: storage is guarded by a shared_mutex — any number of panel
// readers (scan/collect/point_count/...) proceed in parallel and only
// writers (write_batch, retention, compact, clear) take the lock
// exclusively.  Every write bumps the touched measurement's *write epoch*,
// a never-repeating global counter the query engine's result cache keys
// its invalidation on.
//
// The query front end lives in src/query (parse → plan → execute, result
// cache, downsample pushdown); this class stores runs and hands out views
// (scan) or filtered copies (collect).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/registry.hpp"
#include "tsdb/columns.hpp"
#include "tsdb/dict.hpp"
#include "tsdb/point.hpp"
#include "tsdb/sink.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace pmove::tsdb {

struct QueryResult {
  /// "time" followed by the selected field names (or "agg(field)" labels).
  std::vector<std::string> columns;
  /// One row per matching point (or a single row for aggregate queries);
  /// row[0] is the timestamp, NaN marks a missing field.
  std::vector<std::vector<double>> rows;

  /// Index of `name` in columns, or columns.size() when absent.  O(columns)
  /// per call — resolve once before a row loop, never per row.
  [[nodiscard]] std::size_t column_index(std::string_view name) const;
};

/// Retention policy: points older than `duration` (relative to the max time
/// in the DB or an explicit "now") are dropped by enforce_retention().
struct RetentionPolicy {
  TimeNs duration = 0;  ///< 0 = keep forever
};

/// Storage-engine introspection snapshot (the pmove_tsdb gauges).
struct TsdbStats {
  std::size_t measurements = 0;
  std::size_t series = 0;        ///< (measurement, tag set) pairs
  std::size_t points = 0;        ///< live rows (excludes trimmed-not-compacted)
  std::size_t dict_strings = 0;  ///< interned tag strings
  std::size_t dict_tagsets = 0;  ///< interned tag sets
  std::size_t dict_bytes = 0;    ///< dictionary payload bytes
  /// Resident column payload: timestamps, seqs, field values and presence
  /// maps, including trimmed rows awaiting compaction.  Excludes allocator
  /// slack and per-series fixed overhead.
  std::size_t column_bytes = 0;
  std::size_t sealed_runs = 0;   ///< sorted runs awaiting compaction
  std::size_t active_rows = 0;   ///< rows in arrival-order active runs
  std::uint64_t run_seals = 0;   ///< lifetime active-run seals
  std::uint64_t run_folds = 0;   ///< lifetime sealed→base compactions
};

class TimeSeriesDb : public PointSink {
 public:
  TimeSeriesDb() : run_config_(RunConfig::from_env()) {}
  explicit TimeSeriesDb(RetentionPolicy retention)
      : retention_(retention), run_config_(RunConfig::from_env()) {}

  /// Bulk insert: one lock acquisition per batch, pure column appends per
  /// point (ordering is restored lazily at seal/compaction time).  The
  /// batch is validated up front and rejected as a unit if any point is
  /// invalid (no partial insert).  Bumps the write epoch of every touched
  /// measurement.  (Single points and line protocol go through the
  /// PointSink write()/write_line() helpers.)
  Status write_batch(std::vector<Point> points) override;

  /// DEPRECATED: legacy string read path, kept as a thin parse-then-run
  /// wrapper for line-protocol compatibility.  Build a typed query::Query
  /// (query/query.hpp) and execute it with query::run() or through a
  /// query::QueryEngine, which adds result caching and downsample
  /// pushdown.  Defined in src/query/compat.cpp — callers must link
  /// pmove_query.  Scheduled for removal; see DESIGN.md.
  [[deprecated("parse the text with query::Query::parse and use query::run "
               "(src/query) instead")]] [[nodiscard]]
  Expected<QueryResult> query(std::string_view text) const;

  /// Drops points older than the retention window; returns #dropped.
  std::size_t enforce_retention(TimeNs now);

  /// Folds every series' sealed + active runs into its sorted base run.
  /// Writers do this incrementally; an explicit call is useful before a
  /// read-heavy phase or in tests.  Returns the number of runs folded.
  std::size_t compact();

  [[nodiscard]] std::vector<std::string> measurements() const;
  [[nodiscard]] std::size_t point_count() const;
  [[nodiscard]] std::size_t point_count(std::string_view measurement) const;

  /// Total bytes written in line-protocol form (disk-usage accounting).
  [[nodiscard]] std::size_t bytes_written() const;

  /// Recorded-data support (the paper monitors "live and/or recorded"
  /// performance data): dump every point as line protocol, one per line,
  /// and load such a file back (appending to current contents).  The dump
  /// renders a consistent snapshot under the shared lock, then performs
  /// the file I/O outside it so a slow disk never stalls writers.
  Status dump_to_file(const std::string& path) const;
  Status load_from_file(const std::string& path);

  void clear();

  /// Removes one measurement entirely; returns the number of dropped
  /// points.  Used by the query engine to re-materialize downsample
  /// targets.
  std::size_t drop_measurement(std::string_view name);

  /// Removes one series (measurement + exact tag set); returns the number
  /// of dropped points.  The fleet tier uses this to migrate exactly the
  /// series whose ring placement moved.
  std::size_t drop_series(std::string_view measurement,
                          const std::map<std::string, std::string>& tags);

  [[nodiscard]] bool has_measurement(std::string_view name) const;

  /// Write epoch of a measurement: 0 while absent, otherwise a globally
  /// monotonic value that changes on every mutation (write_batch,
  /// retention trim, drop+recreate) and never repeats — so a cached query
  /// result tagged with the epoch observed *before* its scan is valid
  /// exactly while the value is unchanged.
  [[nodiscard]] std::uint64_t write_epoch(std::string_view measurement) const;

  // ----------------------------------------------------------- read paths

  /// Zero-copy scan: invoked exactly once with a SeriesView per matching
  /// series (tag filters satisfied, rows clipped to [time_min, time_max],
  /// series ordered by decoded tag set so iteration order is
  /// deterministic).  The DB's shared lock is held for the duration of the
  /// callback; the views alias live column storage and MUST NOT escape
  /// it.  Series with no row in range are omitted.  Returns false (with an
  /// empty-span callback) when the measurement does not exist.
  using ScanCallback = std::function<void(std::span<const SeriesView>)>;
  bool scan(std::string_view measurement, TimeNs time_min, TimeNs time_max,
            const std::map<std::string, std::string>& tag_filters,
            const ScanCallback& visit) const;

  /// Copies of the points of `measurement` in [time_min, time_max] whose
  /// tags match every entry of `tag_filters`, in (time, arrival) order.
  /// Compatibility wrapper over scan() that materializes Points — the read
  /// primitive of the sharded merge path and legacy callers.
  [[nodiscard]] std::vector<Point> collect(
      std::string_view measurement, TimeNs time_min, TimeNs time_max,
      const std::map<std::string, std::string>& tag_filters) const;

  // -------------------------------------------------------- introspection

  [[nodiscard]] TsdbStats stats() const;

  /// LSM write-path tuning.  set_run_config applies to subsequent writes
  /// only (existing runs keep their shape until the compactor folds them).
  [[nodiscard]] RunConfig run_config() const;
  void set_run_config(const RunConfig& config);

  /// Enables pmove_tsdb self-telemetry: after every mutation the storage
  /// gauges (series/points/dict/column bytes, run counters) are refreshed
  /// under the given instance tag.  Off by default — per-shard ingest DBs
  /// stay silent; the daemon names its primary DB.
  void set_telemetry_instance(const std::string& instance);

 private:
  struct MeasurementStore {
    std::vector<std::unique_ptr<Series>> series;  ///< creation order
    std::map<TagDictionary::TagSetId, std::uint32_t> by_tagset;
    /// Series indices ordered by decoded tag set (lexicographic key/value
    /// strings) — the deterministic scan order.
    std::vector<std::uint32_t> sorted;
  };

  /// Bumps `measurement`'s epoch; caller holds the exclusive lock.
  void bump_epoch_locked(const std::string& measurement);

  /// Appends one point's row to the series' active run, then seals/folds
  /// if thresholds are crossed; caller holds the exclusive lock.
  void append_row_locked(Series& series, const Point& point);

  /// Sorts the active run if needed and moves it onto the sealed list.
  void seal_active_locked(Series& series);

  /// Folds base + sealed (and, when `include_active`, the active run) into
  /// one sorted base run.
  void fold_series_locked(Series& series, bool include_active);

  /// Finds (or creates) the series of `tags` under `store`.
  Series* resolve_series_locked(MeasurementStore& store,
                                const std::string& measurement,
                                const std::map<std::string, std::string>& tags);

  /// Matching views of `measurement` under the (already held) shared
  /// lock; returns false when the measurement is absent.
  bool gather_views_locked(std::string_view measurement, TimeNs time_min,
                           TimeNs time_max,
                           const std::map<std::string, std::string>& filters,
                           std::vector<SeriesView>& out) const;

  [[nodiscard]] std::size_t stats_column_bytes_locked() const;
  void refresh_gauges_locked();

  mutable std::shared_mutex mutex_;
  std::map<std::string, MeasurementStore, std::less<>> series_;
  std::map<std::string, std::uint64_t, std::less<>> epochs_;
  TagDictionary dict_;
  std::uint64_t epoch_counter_ = 0;  ///< never reset, so epochs never repeat
  std::uint64_t seq_counter_ = 0;    ///< per-DB arrival counter (row order)
  std::uint64_t batch_counter_ = 0;  ///< write_batch touch-dedup generation
  std::size_t live_points_ = 0;
  RetentionPolicy retention_;
  RunConfig run_config_;
  std::size_t bytes_written_ = 0;
  std::uint64_t run_seals_ = 0;
  std::uint64_t run_folds_ = 0;

  // pmove_tsdb self-telemetry; null until set_telemetry_instance().
  metrics::Gauge* m_series_ = nullptr;
  metrics::Gauge* m_points_ = nullptr;
  metrics::Gauge* m_dict_strings_ = nullptr;
  metrics::Gauge* m_dict_bytes_ = nullptr;
  metrics::Gauge* m_column_bytes_ = nullptr;
  metrics::Gauge* m_sealed_runs_ = nullptr;
  metrics::Gauge* m_run_seals_ = nullptr;
  metrics::Gauge* m_run_folds_ = nullptr;
};

/// DEPRECATED alongside TimeSeriesDb::query — use query::run_sharded with a
/// typed query::Query.  Defined in src/query/compat.cpp (link pmove_query).
[[deprecated("use query::run_sharded (src/query) instead")]]
Expected<QueryResult> query_sharded(
    const std::vector<const TimeSeriesDb*>& shards, std::string_view text);

}  // namespace pmove::tsdb
