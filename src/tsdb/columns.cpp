#include "tsdb/columns.hpp"

#include <algorithm>
#include <cstdlib>

namespace pmove::tsdb {

namespace {

// Fields are kept sorted by name; both lookups binary-search it.
template <class Fields>
auto find_field(Fields& fields, std::string_view name) {
  return std::lower_bound(
      fields.begin(), fields.end(), name,
      [](const FieldColumn& col, std::string_view n) { return col.name < n; });
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  return (end == raw || v <= 0) ? fallback : static_cast<std::size_t>(v);
}

double env_ratio(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  return (end == raw || v <= 0.0) ? fallback : v;
}

}  // namespace

const FieldColumn* Run::field(std::string_view name) const {
  auto it = find_field(fields, name);
  return it != fields.end() && it->name == name ? &*it : nullptr;
}

FieldColumn* Run::field(std::string_view name) {
  auto it = find_field(fields, name);
  return it != fields.end() && it->name == name ? &*it : nullptr;
}

RunConfig RunConfig::from_env() {
  RunConfig c;
  c.seal_rows = env_size("PMOVE_TSDB_RUN_ROWS", c.seal_rows);
  c.max_sealed = env_size("PMOVE_TSDB_RUN_MAX_SEALED", c.max_sealed);
  c.fold_ratio = env_ratio("PMOVE_TSDB_RUN_FOLD_RATIO", c.fold_ratio);
  return c;
}

bool SeriesView::contiguous() const {
  return segments_.size() == 1 && segments_[0].index.empty();
}

std::span<const TimeNs> SeriesView::times() const {
  const Segment& seg = segments_[0];
  return {seg.run->times.data() + seg.begin, seg.end - seg.begin};
}

std::span<const std::uint64_t> SeriesView::seqs() const {
  const Segment& seg = segments_[0];
  return {seg.run->seqs.data() + seg.begin, seg.end - seg.begin};
}

std::span<const double> SeriesView::values(std::size_t i) const {
  const Segment& seg = segments_[0];
  const FieldColumn* col = column(i, 0);
  if (col == nullptr) return {};
  return {col->values.data() + seg.begin, seg.end - seg.begin};
}

const std::uint8_t* SeriesView::present(std::size_t i) const {
  const Segment& seg = segments_[0];
  const FieldColumn* col = column(i, 0);
  if (col == nullptr || col->present.empty()) return nullptr;
  return col->present.data() + seg.begin;
}

std::size_t SeriesView::field_index(std::string_view name) const {
  auto it = std::lower_bound(fields_.begin(), fields_.end(), name);
  if (it == fields_.end() || *it != name) return fields_.size();
  return static_cast<std::size_t>(it - fields_.begin());
}

bool SeriesView::any_present(std::size_t i) const {
  for (std::uint32_t s = 0; s < segments_.size(); ++s) {
    const FieldColumn* col = column(i, s);
    if (col == nullptr) continue;
    const Segment& seg = segments_[s];
    if (col->present.empty()) {
      if (seg.rows() > 0) return true;
      continue;
    }
    for (std::size_t r = 0; r < seg.rows(); ++r) {
      if (col->present[seg.physical(r)] != 0) return true;
    }
  }
  return false;
}

SeriesView SeriesViewBuilder::build(const Series& series,
                                    const TagDictionary& dict, TimeNs time_min,
                                    TimeNs time_max) {
  SeriesView view;
  view.tagset_id_ = series.tagset_id;
  view.dict_ = &dict;

  // Clip each non-empty run to the time range.  Sorted runs binary-search;
  // an unsorted active run gets an explicit (time, seq)-ordered index of
  // its in-range rows (bounded by the seal threshold, so always small).
  const auto add_run = [&](const Run& run) {
    if (run.empty()) return;
    SeriesView::Segment seg;
    seg.run = &run;
    if (run.sorted) {
      const auto live_begin =
          run.times.begin() + static_cast<std::ptrdiff_t>(run.head);
      auto begin = std::lower_bound(live_begin, run.times.end(), time_min);
      auto end = std::upper_bound(begin, run.times.end(), time_max);
      if (begin == end) return;
      seg.begin = static_cast<std::size_t>(begin - run.times.begin());
      seg.end = static_cast<std::size_t>(end - run.times.begin());
    } else {
      for (std::size_t r = run.head; r < run.times.size(); ++r) {
        if (run.times[r] < time_min || run.times[r] > time_max) continue;
        seg.index.push_back(static_cast<std::uint32_t>(r));
      }
      if (seg.index.empty()) return;
      // Rows were appended in seq order, so a stable time sort yields
      // (time, seq) order.
      std::stable_sort(seg.index.begin(), seg.index.end(),
                       [&run](std::uint32_t a, std::uint32_t b) {
                         return run.times[a] < run.times[b];
                       });
      seg.begin = seg.index.front();
      seg.end = seg.index.back() + 1;  // informational; index governs
    }
    view.segments_.push_back(std::move(seg));
  };
  add_run(series.base);
  for (const Run& run : series.sealed) add_run(run);
  add_run(series.active);
  if (view.segments_.empty()) return view;

  for (const SeriesView::Segment& seg : view.segments_) {
    view.rows_ += seg.rows();
  }

  // Order segments by their first (time, seq) key, then test whether the
  // concatenation is already globally sorted — true whenever runs cover
  // disjoint time windows (the in-order ingest steady state), which makes
  // enumeration allocation-free.
  const auto first_key = [](const SeriesView::Segment& seg) {
    const std::size_t r = seg.physical(0);
    return std::pair<TimeNs, std::uint64_t>(seg.run->times[r],
                                            seg.run->seqs[r]);
  };
  const auto last_key = [](const SeriesView::Segment& seg) {
    const std::size_t r = seg.physical(seg.rows() - 1);
    return std::pair<TimeNs, std::uint64_t>(seg.run->times[r],
                                            seg.run->seqs[r]);
  };
  std::stable_sort(view.segments_.begin(), view.segments_.end(),
                   [&](const SeriesView::Segment& a,
                       const SeriesView::Segment& b) {
                     return first_key(a) < first_key(b);
                   });
  bool ordered = true;
  for (std::size_t s = 0; s + 1 < view.segments_.size(); ++s) {
    if (last_key(view.segments_[s]) > first_key(view.segments_[s + 1])) {
      ordered = false;
      break;
    }
  }

  // Unified field schema: union of the segment runs' (sorted) field lists.
  for (const SeriesView::Segment& seg : view.segments_) {
    for (const FieldColumn& col : seg.run->fields) {
      auto it = std::lower_bound(view.fields_.begin(), view.fields_.end(),
                                 std::string_view(col.name));
      if (it == view.fields_.end() || *it != col.name) {
        view.fields_.insert(it, std::string_view(col.name));
      }
    }
  }
  view.cols_.assign(view.fields_.size() * view.segments_.size(), nullptr);
  for (std::size_t f = 0; f < view.fields_.size(); ++f) {
    for (std::size_t s = 0; s < view.segments_.size(); ++s) {
      view.cols_[f * view.segments_.size() + s] =
          view.segments_[s].run->field(view.fields_[f]);
    }
  }

  if (!ordered) {
    // Interleaved runs (out-of-order arrivals): materialize the merged
    // order once.  Keyed sort over (time, seq) copies, then strip to Locs.
    struct Keyed {
      TimeNs time;
      std::uint64_t seq;
      SeriesView::Loc loc;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(view.rows_);
    for (std::uint32_t s = 0; s < view.segments_.size(); ++s) {
      const SeriesView::Segment& seg = view.segments_[s];
      for (std::size_t i = 0; i < seg.rows(); ++i) {
        const auto row = static_cast<std::uint32_t>(seg.physical(i));
        keyed.push_back({seg.run->times[row], seg.run->seqs[row],
                         SeriesView::Loc{s, row}});
      }
    }
    std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    });
    view.order_.reserve(keyed.size());
    for (const Keyed& k : keyed) view.order_.push_back(k.loc);
  }
  return view;
}

std::vector<ViewRow> merged_view_rows(std::span<const SeriesView> views) {
  std::size_t total = 0;
  for (const SeriesView& v : views) total += v.rows();
  std::vector<ViewRow> refs;
  refs.reserve(total);
  if (views.size() <= 1) {
    for (std::uint32_t vi = 0; vi < views.size(); ++vi) {
      views[vi].for_each_row(
          [&](SeriesView::Loc loc, TimeNs time, std::uint64_t seq) {
            refs.push_back({time, seq, vi, loc});
          });
    }
    return refs;
  }

  // Each view is already in (time, seq) order, so merging K views is a
  // k-way heap merge: N·log K key comparisons instead of the N·log N of
  // sorting the concatenation.
  struct Head {
    TimeNs time;
    std::uint64_t seq;
    std::uint32_t view;
  };
  const auto later = [](const Head& a, const Head& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  };
  std::vector<SeriesView::RowCursor> cursors;
  cursors.reserve(views.size());
  std::vector<Head> heap;
  heap.reserve(views.size());
  for (std::uint32_t vi = 0; vi < views.size(); ++vi) {
    cursors.emplace_back(views[vi]);
    if (cursors.back().valid()) {
      heap.push_back({cursors.back().time(), cursors.back().seq(), vi});
    }
  }
  std::make_heap(heap.begin(), heap.end(), later);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const Head head = heap.back();
    heap.pop_back();
    SeriesView::RowCursor& cur = cursors[head.view];
    refs.push_back({head.time, head.seq, head.view, cur.loc()});
    cur.advance();
    if (cur.valid()) {
      heap.push_back({cur.time(), cur.seq(), head.view});
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }
  return refs;
}

}  // namespace pmove::tsdb
