#include "tsdb/columns.hpp"

#include <algorithm>

namespace pmove::tsdb {

namespace {

// Fields are kept sorted by name; both lookups binary-search it.
template <class Fields>
auto find_field(Fields& fields, std::string_view name) {
  return std::lower_bound(
      fields.begin(), fields.end(), name,
      [](const FieldColumn& col, std::string_view n) { return col.name < n; });
}

}  // namespace

const FieldColumn* Series::field(std::string_view name) const {
  auto it = find_field(fields, name);
  return it != fields.end() && it->name == name ? &*it : nullptr;
}

FieldColumn* Series::field(std::string_view name) {
  auto it = find_field(fields, name);
  return it != fields.end() && it->name == name ? &*it : nullptr;
}

std::size_t SeriesSlice::field_index(std::string_view name) const {
  auto it = find_field(series_->fields, name);
  if (it == series_->fields.end() || it->name != name) {
    return series_->fields.size();
  }
  return static_cast<std::size_t>(it - series_->fields.begin());
}

bool SeriesSlice::any_present(std::size_t i) const {
  const std::uint8_t* map = present(i);
  if (map == nullptr) return rows() > 0;
  return std::find(map, map + rows(), std::uint8_t{1}) != map + rows();
}

std::vector<MergedRowRef> merged_rows(std::span<const SeriesSlice> slices) {
  std::size_t total = 0;
  for (const SeriesSlice& s : slices) total += s.rows();
  std::vector<MergedRowRef> refs;
  refs.reserve(total);
  for (std::size_t si = 0; si < slices.size(); ++si) {
    const auto times = slices[si].times();
    const auto seqs = slices[si].seqs();
    for (std::size_t r = 0; r < times.size(); ++r) {
      refs.push_back({times[r], seqs[r], static_cast<std::uint32_t>(si),
                      static_cast<std::uint32_t>(r)});
    }
  }
  std::sort(refs.begin(), refs.end(),
            [](const MergedRowRef& a, const MergedRowRef& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;
            });
  return refs;
}

}  // namespace pmove::tsdb
