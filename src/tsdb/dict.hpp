// Tag dictionary: string and tag-set interning for the columnar engine.
//
// InfluxDB's TSM engine keys series by (measurement, tag set) and stores the
// tag strings once in a dictionary; the per-point representation is then an
// integer series id.  This class is that dictionary: it interns tag keys and
// values into dense 32-bit string ids and whole tag sets (the sorted
// key=value map of a Point) into dense tag-set ids, so tag filtering inside
// the storage engine becomes integer comparison instead of per-point
// std::map<std::string,...> walks.
//
// Not thread safe on its own: TimeSeriesDb guards it with the same
// shared_mutex that protects the columns (interning mutates under the
// exclusive lock; id lookups run under the shared lock).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pmove::tsdb {

class TagDictionary {
 public:
  using StringId = std::uint32_t;
  using TagSetId = std::uint32_t;

  /// A tag set as stored: (key id, value id) pairs ordered by key *string*
  /// (the order Point::tags iterates in), so decoding reproduces the
  /// original map ordering without re-sorting.
  using TagSet = std::vector<std::pair<StringId, StringId>>;

  /// Id of the empty tag set; interned at construction so every untagged
  /// series shares it.
  static constexpr TagSetId kEmptyTagSet = 0;

  TagDictionary() { (void)intern_set({}); }

  /// Interns `s`, returning its id (existing id if already present).
  StringId intern(std::string_view s);

  /// Lookup without interning; nullopt when `s` was never interned — which
  /// means no stored point can match a filter naming it.
  [[nodiscard]] std::optional<StringId> find(std::string_view s) const;

  [[nodiscard]] const std::string& string(StringId id) const {
    return strings_[id];
  }

  /// Interns a whole tag set (the map iterates in key order, which the
  /// stored TagSet preserves).
  TagSetId intern_set(const std::map<std::string, std::string>& tags);

  [[nodiscard]] const TagSet& set(TagSetId id) const { return sets_[id]; }

  /// True when tag set `id` contains key=value (both already interned).
  [[nodiscard]] bool set_contains(TagSetId id, StringId key,
                                  StringId value) const {
    for (const auto& [k, v] : sets_[id]) {
      if (k == key) return v == value;
    }
    return false;
  }

  /// Rebuilds the original Point::tags map.
  [[nodiscard]] std::map<std::string, std::string> decode(TagSetId id) const;

  [[nodiscard]] std::size_t string_count() const { return strings_.size(); }
  [[nodiscard]] std::size_t set_count() const { return sets_.size(); }

  /// Payload bytes held by the dictionary (strings + tag-set pair vectors);
  /// the pmove_tsdb `dict_bytes` gauge.
  [[nodiscard]] std::size_t memory_bytes() const { return memory_bytes_; }

  void clear();

 private:
  std::vector<std::string> strings_;
  std::map<std::string, StringId, std::less<>> ids_;
  std::vector<TagSet> sets_;
  std::map<TagSet, TagSetId> set_ids_;
  std::size_t memory_bytes_ = 0;
};

}  // namespace pmove::tsdb
