// Columnar series storage for the TSDB (InfluxDB-TSM-style layout) with an
// LSM-style write path.
//
// One Series per (measurement, tag set).  A series is a small LSM tree of
// *runs*: a sorted `base` run (the bulk of the data), a bounded list of
// `sealed` runs (each individually (time, seq)-sorted), and an `active` run
// that appends in arrival order — so a batch write is a pure column append,
// never an insertion sort.  The active run is sealed (sorted once) when it
// reaches a size threshold, and sealed runs are folded into the base by an
// amortized compactor, so ordering cost is paid O(log n) times per row in
// sort-sized chunks instead of once per batch over the whole series.
//
// Ordering invariant: every run except the active one is sorted by
// (time, seq) where seq is the per-DB arrival counter.  The seed row store
// kept each measurement's points stably time-sorted in arrival order, which
// is exactly the (time, seq) total order — merging runs (and series) by
// (time, seq) therefore reproduces the seed's point order bit-for-bit,
// including the order floating-point aggregation folds values in.
//
// Read side: scans hand out SeriesView cursors.  A view hides the run
// structure entirely — callers see one logical sequence of rows in
// (time, seq) order plus a unified field schema, whether the series is one
// contiguous compacted run or a pile of interleaved live runs.  Query,
// fleet, and bench code consume views only; runs are an implementation
// detail the compactor is free to rearrange.
//
// Missing fields: a row missing a field stores NaN in that field's value
// column.  Because a *stored* NaN field value must stay distinguishable
// from an absent one (aggregates skip absent values but fold stored NaNs),
// each column optionally carries a presence byte-map; an empty map means
// "present in every row" — the common case, since a series almost always
// has a fixed schema — and costs nothing to scan.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "tsdb/dict.hpp"
#include "util/clock.hpp"

namespace pmove::tsdb {

struct FieldColumn {
  std::string name;
  /// Parallel to Run::times; NaN where the row lacks the field.
  std::vector<double> values;
  /// Empty = present in every row; else one byte per row (1 = present).
  std::vector<std::uint8_t> present;

  [[nodiscard]] bool all_present() const { return present.empty(); }
};

/// One run of rows: parallel time/seq/field columns.  Runs are the unit of
/// ordering — sorted runs keep (time, seq) order; the active run keeps
/// arrival order and tracks whether that happens to be sorted.
struct Run {
  /// Logical first row: rows [0, head) were trimmed by retention and await
  /// compaction.  All column vectors keep physical length == times.size().
  std::size_t head = 0;
  /// True while times[head..] is non-decreasing.  Appends maintain it; a
  /// freshly sealed or folded run always has it set.
  bool sorted = true;
  std::vector<TimeNs> times;
  std::vector<std::uint64_t> seqs;
  std::vector<FieldColumn> fields;  ///< sorted by name

  [[nodiscard]] std::size_t row_count() const { return times.size() - head; }
  [[nodiscard]] bool empty() const { return head == times.size(); }

  /// Field column by name, or nullptr.  Binary search over the sorted
  /// field vector.
  [[nodiscard]] const FieldColumn* field(std::string_view name) const;
  [[nodiscard]] FieldColumn* field(std::string_view name);
};

/// All points of one (measurement, tag set): an LSM tree of runs.
struct Series {
  TagDictionary::TagSetId tagset_id = 0;
  Run base;                 ///< sorted; where sealed runs are folded into
  std::vector<Run> sealed;  ///< sorted runs awaiting compaction
  Run active;               ///< arrival-order append target
  /// Cached line-protocol size of "measurement,tags... " — the per-point
  /// invariant part of wire-byte accounting, computed once at creation.
  std::size_t wire_prefix = 0;
  /// write_batch generation stamp: equality with the batch's id means the
  /// series is already in this batch's touched list (O(1) dedup).
  std::uint64_t touch_batch = 0;

  [[nodiscard]] std::size_t row_count() const {
    std::size_t n = base.row_count() + active.row_count();
    for (const Run& r : sealed) n += r.row_count();
    return n;
  }
  [[nodiscard]] std::size_t sealed_rows() const {
    std::size_t n = 0;
    for (const Run& r : sealed) n += r.row_count();
    return n;
  }
};

/// LSM write-path tuning (the PMOVE_TSDB_RUN_* knobs).
struct RunConfig {
  /// Active run is sealed (sorted) once it holds this many rows.
  std::size_t seal_rows = 4096;
  /// Fold sealed runs into the base when more than this many accumulate…
  std::size_t max_sealed = 8;
  /// …or when their rows reach this fraction of the base (geometric
  /// amortization: each fold at least grows the base by the ratio).
  double fold_ratio = 0.5;

  /// Reads PMOVE_TSDB_RUN_ROWS / PMOVE_TSDB_RUN_MAX_SEALED /
  /// PMOVE_TSDB_RUN_FOLD_RATIO, clamping unusable values to the defaults.
  static RunConfig from_env();
};

/// Zero-copy cursor over one series' rows inside a scanned time range, in
/// (time, seq) order.  Valid only inside the TimeSeriesDb::scan() callback
/// (the DB's shared lock is held; the view aliases live column storage).
///
/// The view hides the run structure behind two access styles:
///   * contiguous() views expose direct column spans (times/values/…) —
///     the fully-compacted fast path;
///   * every view supports Loc-based access: for_each_row() enumerates
///     (Loc, time, seq) in logical order, and value/has_value/time read a
///     cell by Loc.  A Loc is an opaque physical position; callers must
///     not fabricate one.
/// Field indices refer to the view's unified schema: the union of the
/// fields of every run in range, name-sorted.
class SeriesView {
 public:
  /// Opaque physical row position (segment + row within it).
  struct Loc {
    std::uint32_t seg;
    std::uint32_t row;
  };

  [[nodiscard]] std::size_t rows() const { return rows_; }

  /// True when the rows are one physically contiguous sorted range — the
  /// span accessors below are only valid then.
  [[nodiscard]] bool contiguous() const;

  [[nodiscard]] std::span<const TimeNs> times() const;
  [[nodiscard]] std::span<const std::uint64_t> seqs() const;
  /// Value span of field `i`, restricted to the view (contiguous only);
  /// empty when the run lacks the field.
  [[nodiscard]] std::span<const double> values(std::size_t i) const;
  /// Presence bytes of field `i` (contiguous only), or nullptr when the
  /// field is present in every row.
  [[nodiscard]] const std::uint8_t* present(std::size_t i) const;

  [[nodiscard]] std::size_t field_count() const { return fields_.size(); }
  [[nodiscard]] std::string_view field_name(std::size_t i) const {
    return fields_[i];
  }
  /// Index of the named field, or field_count() when the series lacks it.
  [[nodiscard]] std::size_t field_index(std::string_view name) const;
  /// True when field `i` is present in at least one row of the view.
  [[nodiscard]] bool any_present(std::size_t i) const;

  // Loc-based access — valid for every view.  Inline: the merged-row
  // evaluation paths call these once per row per field.
  [[nodiscard]] TimeNs time_at(Loc loc) const {
    return segments_[loc.seg].run->times[loc.row];
  }
  [[nodiscard]] std::uint64_t seq_at(Loc loc) const {
    return segments_[loc.seg].run->seqs[loc.row];
  }
  [[nodiscard]] bool has_value(std::size_t field, Loc loc) const {
    const FieldColumn* col = column(field, loc.seg);
    if (col == nullptr) return false;
    return col->present.empty() || col->present[loc.row] != 0;
  }
  [[nodiscard]] double value_at(std::size_t field, Loc loc) const {
    return column(field, loc.seg)->values[loc.row];
  }

  /// Incremental iterator over the view's rows in (time, seq) order —
  /// O(1) advance, no per-row allocation.  merged_view_rows uses one per
  /// view for its k-way heap merge.
  class RowCursor {
   public:
    explicit RowCursor(const SeriesView& view) : view_(&view) {}
    [[nodiscard]] bool valid() const { return i_ < view_->rows_; }
    [[nodiscard]] Loc loc() const {
      if (!view_->order_.empty()) return view_->order_[i_];
      const Segment& seg = view_->segments_[seg_];
      return Loc{seg_, static_cast<std::uint32_t>(seg.physical(pos_))};
    }
    [[nodiscard]] TimeNs time() const { return view_->time_at(loc()); }
    [[nodiscard]] std::uint64_t seq() const { return view_->seq_at(loc()); }
    void advance() {
      ++i_;
      if (!view_->order_.empty()) return;
      if (++pos_ >= view_->segments_[seg_].rows()) {
        pos_ = 0;
        ++seg_;
      }
    }

   private:
    const SeriesView* view_;
    std::size_t i_ = 0;
    std::uint32_t seg_ = 0;  ///< segment walk, unused when order_ is set
    std::size_t pos_ = 0;
  };

  /// Visits every row in (time, seq) order: fn(Loc, time, seq).
  template <class Fn>
  void for_each_row(Fn&& fn) const {
    if (!order_.empty()) {
      for (const Loc& loc : order_) fn(loc, time_at(loc), seq_at(loc));
      return;
    }
    for (std::uint32_t s = 0; s < segments_.size(); ++s) {
      const Segment& seg = segments_[s];
      for (std::size_t i = 0; i < seg.rows(); ++i) {
        const auto row = static_cast<std::uint32_t>(seg.physical(i));
        fn(Loc{s, row}, seg.run->times[row], seg.run->seqs[row]);
      }
    }
  }

  [[nodiscard]] TagDictionary::TagSetId tagset_id() const {
    return tagset_id_;
  }
  /// Materializes the tag map (dictionary decode) — for callers that need
  /// real strings, e.g. collect() rebuilding Points.
  [[nodiscard]] std::map<std::string, std::string> decode_tags() const {
    return dict_->decode(tagset_id_);
  }
  [[nodiscard]] const TagDictionary::TagSet& tagset() const {
    return dict_->set(tagset_id_);
  }
  [[nodiscard]] const TagDictionary& dict() const { return *dict_; }

 private:
  friend class SeriesViewBuilder;

  /// One clipped run: rows [begin, end), optionally indirected through
  /// `index` (used for an unsorted active run, where the in-range rows are
  /// scattered; index lists them in (time, seq) order).
  struct Segment {
    const Run* run = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::vector<std::uint32_t> index;

    [[nodiscard]] std::size_t rows() const {
      return index.empty() ? end - begin : index.size();
    }
    [[nodiscard]] std::size_t physical(std::size_t i) const {
      return index.empty() ? begin + i : index[i];
    }
  };

  [[nodiscard]] const FieldColumn* column(std::size_t field,
                                          std::uint32_t seg) const {
    return cols_[field * segments_.size() + seg];
  }

  TagDictionary::TagSetId tagset_id_ = 0;
  const TagDictionary* dict_ = nullptr;
  std::vector<Segment> segments_;
  std::size_t rows_ = 0;
  /// Unified field schema (union over segments, name-sorted).  The
  /// string_views alias the runs' FieldColumn names, which outlive the
  /// view (the scan's shared lock is held).
  std::vector<std::string_view> fields_;
  /// Column pointer table, [field * segment_count + segment]; nullptr when
  /// that segment's run lacks the field.
  std::vector<const FieldColumn*> cols_;
  /// Empty when concatenating the segments already yields (time, seq)
  /// order; else every row in order.
  std::vector<Loc> order_;
};

/// Builds SeriesViews from series + clip ranges — used by the DB's scan
/// path and by tests that construct views directly.
class SeriesViewBuilder {
 public:
  /// View of `series` clipped to [time_min, time_max].  Returns a view with
  /// rows() == 0 when nothing is in range.
  static SeriesView build(const Series& series, const TagDictionary& dict,
                          TimeNs time_min, TimeNs time_max);
};

/// One row of a multi-view scan in merged order: the (time, seq) key it
/// sorted by, which view, and the opaque position within it.
struct ViewRow {
  TimeNs time;
  std::uint64_t seq;
  std::uint32_t view;
  SeriesView::Loc loc;
};

/// Rows of all views merged into (time, seq) order — the per-measurement
/// point order of the seed row store, which keeps merged evaluation (and
/// its floating-point fold order) bit-for-bit identical.
std::vector<ViewRow> merged_view_rows(std::span<const SeriesView> views);

}  // namespace pmove::tsdb
