// Columnar series storage for the TSDB (InfluxDB-TSM-style layout).
//
// One Series per (measurement, tag set): a sorted timestamp column, a
// parallel arrival-sequence column (which makes per-measurement ordering a
// total order — see below), and one contiguous double column per field.
// Aggregate scans run as tight loops over the double columns; time-range
// pruning is a binary search on the timestamp column; retention trims move
// a head offset instead of erasing (O(1) per series, amortized compaction).
//
// Ordering invariant: rows are sorted by (time, seq) where seq is the
// per-DB arrival counter.  The seed row store kept each measurement's
// points stably time-sorted in arrival order, which is exactly the
// (time, seq) total order — merging series by (time, seq) therefore
// reproduces the seed's point order bit-for-bit, including the order
// floating-point aggregation folds values in.
//
// Missing fields: a row missing a field stores NaN in that field's value
// column.  Because a *stored* NaN field value must stay distinguishable
// from an absent one (aggregates skip absent values but fold stored NaNs),
// each column optionally carries a presence byte-map; an empty map means
// "present in every row" — the common case, since a series almost always
// has a fixed schema — and costs nothing to scan.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "tsdb/dict.hpp"
#include "util/clock.hpp"

namespace pmove::tsdb {

struct FieldColumn {
  std::string name;
  /// Parallel to Series::times; NaN where the row lacks the field.
  std::vector<double> values;
  /// Empty = present in every row; else one byte per row (1 = present).
  std::vector<std::uint8_t> present;

  [[nodiscard]] bool all_present() const { return present.empty(); }
};

/// All points of one (measurement, tag set), columnar.
struct Series {
  TagDictionary::TagSetId tagset_id = 0;
  /// Logical first row: rows [0, head) were trimmed by retention and await
  /// compaction.  All column vectors keep physical length == times.size().
  std::size_t head = 0;
  std::vector<TimeNs> times;  ///< sorted (ties broken by seqs, also sorted)
  std::vector<std::uint64_t> seqs;
  std::vector<FieldColumn> fields;  ///< sorted by name

  [[nodiscard]] std::size_t row_count() const { return times.size() - head; }

  /// Field column by name, or nullptr.  Binary search over the sorted
  /// field vector.
  [[nodiscard]] const FieldColumn* field(std::string_view name) const;
  [[nodiscard]] FieldColumn* field(std::string_view name);
};

/// Zero-copy view of one series' rows inside a scanned time range.  Valid
/// only inside the TimeSeriesDb::scan() callback (the DB's shared lock is
/// held; the spans alias live column storage).
class SeriesSlice {
 public:
  SeriesSlice(const Series* series, const TagDictionary* dict,
              std::size_t begin, std::size_t end)
      : series_(series), dict_(dict), begin_(begin), end_(end) {}

  [[nodiscard]] std::size_t rows() const { return end_ - begin_; }

  [[nodiscard]] std::span<const TimeNs> times() const {
    return {series_->times.data() + begin_, end_ - begin_};
  }
  [[nodiscard]] std::span<const std::uint64_t> seqs() const {
    return {series_->seqs.data() + begin_, end_ - begin_};
  }

  [[nodiscard]] std::size_t field_count() const {
    return series_->fields.size();
  }
  [[nodiscard]] std::string_view field_name(std::size_t i) const {
    return series_->fields[i].name;
  }

  /// Value span of field `i`, restricted to the slice.
  [[nodiscard]] std::span<const double> values(std::size_t i) const {
    return {series_->fields[i].values.data() + begin_, end_ - begin_};
  }
  /// Presence bytes of field `i` for the slice, or nullptr when the field
  /// is present in every row.
  [[nodiscard]] const std::uint8_t* present(std::size_t i) const {
    const FieldColumn& col = series_->fields[i];
    return col.present.empty() ? nullptr : col.present.data() + begin_;
  }

  /// Index of the named field, or field_count() when the series lacks it.
  [[nodiscard]] std::size_t field_index(std::string_view name) const;

  /// True when field `i` is present in at least one row of the slice.
  [[nodiscard]] bool any_present(std::size_t i) const;

  [[nodiscard]] TagDictionary::TagSetId tagset_id() const {
    return series_->tagset_id;
  }
  /// Materializes the tag map (dictionary decode) — for callers that need
  /// real strings, e.g. collect() rebuilding Points.
  [[nodiscard]] std::map<std::string, std::string> decode_tags() const {
    return dict_->decode(series_->tagset_id);
  }
  [[nodiscard]] const TagDictionary::TagSet& tagset() const {
    return dict_->set(series_->tagset_id);
  }
  [[nodiscard]] const TagDictionary& dict() const { return *dict_; }

 private:
  const Series* series_;
  const TagDictionary* dict_;
  std::size_t begin_;  ///< absolute row index into the series columns
  std::size_t end_;
};

/// One row of a multi-slice scan in merged order: which slice, which
/// slice-relative row, and the (time, seq) key it sorted by.
struct MergedRowRef {
  TimeNs time;
  std::uint64_t seq;
  std::uint32_t slice;
  std::uint32_t row;
};

/// Rows of all slices merged into (time, seq) order — the per-measurement
/// point order of the row store this engine replaced, which keeps merged
/// evaluation (and its floating-point fold order) bit-for-bit identical.
std::vector<MergedRowRef> merged_rows(std::span<const SeriesSlice> slices);

}  // namespace pmove::tsdb
