// Time-series data point and line-protocol codec.
//
// Mirrors the InfluxDB 1.x data model the paper's KB queries target: a
// point belongs to a measurement, carries a tag set (indexed metadata like
// the observation UUID) and a field set (the sampled values, e.g. one field
// per CPU: "_cpu0", "_cpu1", ...).
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "util/clock.hpp"
#include "util/status.hpp"

namespace pmove::tsdb {

struct Point {
  std::string measurement;
  std::map<std::string, std::string> tags;
  std::map<std::string, double> fields;
  TimeNs time = 0;

  /// InfluxDB line protocol:
  ///   measurement,tag=v field1=1.5,field2=2 1690000000000000000
  [[nodiscard]] std::string to_line() const;
  static Expected<Point> from_line(std::string_view line);

  /// Serialized size in bytes — the unit of network/disk accounting in the
  /// resource model (Fig 6).  Computed without building the line so the
  /// write hot path does not allocate; always equals to_line().size().
  [[nodiscard]] std::size_t wire_size() const;
};

/// Line-protocol building blocks, shared with the columnar engine's dump
/// path so it can render rows straight from column storage with exactly the
/// escaping and number formatting of Point::to_line().
namespace lp {

/// Escapes commas, spaces, '=' and backslashes in an identifier.
std::string escape(const std::string& s);

/// Length of escape(s) without building it.
std::size_t escaped_size(std::string_view s);

/// Renders a field value (integral values as integers, else the shortest
/// round-trip decimal form) into `buf`; returns the length.
int format_value(char (&buf)[48], double v);

/// Length of format_value's rendering without writing it anywhere useful.
std::size_t value_width(double v);

/// Length of the base-10 rendering of a timestamp/integer.
std::size_t decimal_width(long long value);

}  // namespace lp

}  // namespace pmove::tsdb
