#include "tsdb/sink.hpp"

#include <utility>

namespace pmove::tsdb {

Status PointSink::write(Point point) {
  std::vector<Point> batch;
  batch.reserve(1);
  batch.push_back(std::move(point));
  return write_batch(std::move(batch));
}

Status PointSink::write_line(std::string_view line) {
  auto point = Point::from_line(line);
  if (!point) return point.status();
  return write(std::move(point.value()));
}

}  // namespace pmove::tsdb
