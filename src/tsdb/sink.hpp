// Abstract destination for time-series points.
//
// The sampler pipeline historically wrote straight into TimeSeriesDb; the
// ingestion tier (src/ingest) sits between the two.  Both implement this
// interface so producers (sampling sessions, live samplers, the daemon) can
// be pointed at either a raw DB or the full ingestion engine without
// depending on the latter.
#pragma once

#include <vector>

#include "tsdb/point.hpp"
#include "util/status.hpp"

namespace pmove::tsdb {

class PointSink {
 public:
  virtual ~PointSink() = default;

  virtual Status write(Point point) = 0;

  /// Accepts a whole batch in one call.  Implementations amortize locking
  /// and ordering work across the batch; the batch is rejected as a unit if
  /// any point is invalid.
  virtual Status write_batch(std::vector<Point> points) = 0;
};

}  // namespace pmove::tsdb
