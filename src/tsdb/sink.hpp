// Abstract destination for time-series points.
//
// The sampler pipeline historically wrote straight into TimeSeriesDb; the
// ingestion tier (src/ingest) sits between the two.  Both implement this
// interface so producers (sampling sessions, live samplers, the daemon) can
// be pointed at either a raw DB or the full ingestion engine without
// depending on the latter.
//
// Sinks implement exactly one virtual hot path: write_batch().  Single
// points and line protocol are non-virtual conveniences that wrap into a
// batch of one, so every implementation (TSDB, ingest engine, test fakes)
// gets them for free and optimizes only the bulk path.
#pragma once

#include <string_view>
#include <vector>

#include "tsdb/point.hpp"
#include "util/status.hpp"

namespace pmove::tsdb {

class PointSink {
 public:
  virtual ~PointSink() = default;

  /// Accepts a whole batch in one call.  Implementations amortize locking
  /// and ordering work across the batch; the batch is rejected as a unit if
  /// any point is invalid.
  virtual Status write_batch(std::vector<Point> points) = 0;

  /// Single-point convenience: delegates to write_batch().
  Status write(Point point);

  /// Line-protocol convenience: parse, then write().
  Status write_line(std::string_view line);
};

}  // namespace pmove::tsdb
