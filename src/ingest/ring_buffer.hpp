// Bounded multi-producer / single-consumer ring buffer.
//
// One instance backs each ingestion shard's batch queue: producers are the
// threads calling IngestEngine::submit*, the consumer is the shard worker.
// A mutex + two condition variables keep the structure simple and
// ThreadSanitizer-clean; the ring storage is preallocated so steady-state
// operation does not allocate.  Backpressure policy (drop / block / spill)
// is decided by the engine on top of try_push / push_wait.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace pmove::ingest {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : ring_(std::max<std::size_t>(1, capacity)) {}

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  /// Non-blocking push; false when full or closed.  Takes an rvalue
  /// reference on purpose: a failed push leaves `item` intact so the caller
  /// can retry, block, or spill it.
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || size_ == ring_.size()) return false;
      push_locked(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking push: waits for space.  timeout_ns < 0 waits forever.
  /// Returns false on timeout or close, with `item` left intact.
  bool push_wait(T&& item, std::int64_t timeout_ns = -1) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      auto ready = [this] { return closed_ || size_ < ring_.size(); };
      if (timeout_ns < 0) {
        not_full_.wait(lock, ready);
      } else if (!not_full_.wait_for(
                     lock, std::chrono::nanoseconds(timeout_ns), ready)) {
        return false;
      }
      if (closed_ || size_ == ring_.size()) return false;
      push_locked(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Consumer side: waits up to `timeout_ns` (forever when negative) for at
  /// least one item or close, then drains everything queued.  May return
  /// empty on timeout or close — pair with is_closed() to tell them apart.
  std::vector<T> pop_all(std::int64_t timeout_ns = -1) {
    std::vector<T> out;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      auto ready = [this] { return closed_ || size_ > 0; };
      if (timeout_ns < 0) {
        not_empty_.wait(lock, ready);
      } else {
        not_empty_.wait_for(lock, std::chrono::nanoseconds(timeout_ns),
                            ready);
      }
      out.reserve(size_);
      while (size_ > 0) {
        out.push_back(std::move(ring_[head_]));
        head_ = (head_ + 1) % ring_.size();
        --size_;
      }
    }
    not_full_.notify_all();
    return out;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  [[nodiscard]] bool is_closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Wakes every waiter; subsequent pushes fail and pop_all drains then
  /// returns empty.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  void push_locked(T item) {
    ring_[(head_ + size_) % ring_.size()] = std::move(item);
    ++size_;
  }

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace pmove::ingest
