// Incrementally maintained aggregate of one field of one series.
//
// The ingestion engine updates these on every accepted point — both as
// running per-series totals and as per-window state for continuous
// downsampling queries — so AGGObservationInterface summaries (superdb) and
// downsampled series come out of O(1) state instead of rescanning raw
// points.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>

namespace pmove::ingest {

struct FieldAggregate {
  std::size_t count = 0;
  double sum = 0.0;
  double sumsq = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void add(double v) {
    ++count;
    sum += v;
    sumsq += v * v;
    min = std::min(min, v);
    max = std::max(max, v);
  }

  void merge(const FieldAggregate& other) {
    count += other.count;
    sum += other.sum;
    sumsq += other.sumsq;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }

  [[nodiscard]] double mean() const {
    return count == 0 ? std::nan("") : sum / static_cast<double>(count);
  }

  /// Sample standard deviation, matching tsdb's stddev() aggregate.
  [[nodiscard]] double stddev() const {
    if (count < 2) return count == 0 ? std::nan("") : 0.0;
    const double n = static_cast<double>(count);
    const double var = (sumsq - sum * sum / n) / (n - 1.0);
    return std::sqrt(std::max(0.0, var));
  }

  /// Value of the named aggregate ("mean", "min", "max", "sum", "count",
  /// "stddev"); NaN for unknown names or empty state.
  [[nodiscard]] double value(const std::string& aggregate) const {
    if (count == 0) return std::nan("");
    if (aggregate == "mean") return mean();
    if (aggregate == "min") return min;
    if (aggregate == "max") return max;
    if (aggregate == "sum") return sum;
    if (aggregate == "count") return static_cast<double>(count);
    if (aggregate == "stddev") return stddev();
    return std::nan("");
  }
};

}  // namespace pmove::ingest
