#include "ingest/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "fault/fault.hpp"
#include "metrics/names.hpp"
#include "query/plan.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace pmove::ingest {

namespace {

constexpr std::int64_t kWorkerIdleNs = 50'000'000;  // spill-drain cadence
constexpr char kKeySep = '\x1f';

std::uint64_t fnv1a(std::uint64_t hash, std::string_view data) {
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string series_key(const std::string& measurement,
                       std::string_view tag_value) {
  std::string key = measurement;
  key += kKeySep;
  key += tag_value;
  return key;
}

std::string window_key(std::size_t rule_index, const tsdb::Point& point,
                       TimeNs window_start) {
  std::string key = std::to_string(rule_index);
  key += kKeySep;
  for (const auto& [k, v] : point.tags) {
    key += k;
    key += '=';
    key += v;
    key += ',';
  }
  key += kKeySep;
  key += std::to_string(window_start);
  return key;
}

TimeNs window_floor(TimeNs t, TimeNs window) {
  TimeNs start = t / window * window;
  if (t < 0 && t % window != 0) start -= window;
  return start;
}

}  // namespace

std::string_view to_string(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kDrop:
      return "drop";
    case BackpressurePolicy::kBlock:
      return "block";
    case BackpressurePolicy::kSpill:
      return "spill";
  }
  return "unknown";
}

Expected<BackpressurePolicy> parse_backpressure(std::string_view name) {
  if (name == "drop") return BackpressurePolicy::kDrop;
  if (name == "block") return BackpressurePolicy::kBlock;
  if (name == "spill") return BackpressurePolicy::kSpill;
  return Status::invalid_argument("unknown backpressure policy: " +
                                  std::string(name));
}

IngestEngine::IngestEngine(IngestOptions options,
                           tsdb::TimeSeriesDb* external)
    : options_(std::move(options)), external_(external) {
  static const WallClock kWallClock;
  clock_ = options_.clock != nullptr ? options_.clock : &kWallClock;
  sleep_ = options_.sleep ? options_.sleep : real_sleep();
  if (options_.shard_count < 1) {
    log_warn("ingest") << "shard_count " << options_.shard_count
                       << " out of range, clamping to 1";
    options_.shard_count = 1;
  }
  if (options_.queue_capacity < 1) {
    log_warn("ingest") << "queue_capacity 0 out of range, clamping to 1";
    options_.queue_capacity = 1;
  }
  metrics::Registry& reg = metrics::Registry::global();
  const char* m = metrics::kMeasurementIngest;
  m_submitted_ = &reg.counter(m, "engine", "submitted_points");
  m_inserted_ = &reg.counter(m, "engine", "inserted_points");
  m_dropped_ = &reg.counter(m, "engine", "dropped_points");
  m_spilled_ = &reg.counter(m, "engine", "spilled_points");
  m_blocked_ = &reg.counter(m, "engine", "blocked_submits");
  m_parked_ = &reg.counter(m, "engine", "parked_points");
  m_replayed_ = &reg.counter(m, "engine", "replayed_points");
  m_abandoned_ = &reg.counter(m, "engine", "abandoned_points");
  m_recovered_ = &reg.counter(m, "engine", "recovered_points");
  m_sink_failures_ = &reg.counter(m, "engine", "sink_failures");
  m_wal_failures_ = &reg.counter(m, "engine", "wal_failures");
  for (int i = 0; i < options_.shard_count; ++i) {
    auto shard = std::make_unique<Shard>(options_.queue_capacity);
    if (external_ == nullptr) {
      shard->storage = std::make_unique<tsdb::TimeSeriesDb>();
    }
    shard->breaker = std::make_unique<CircuitBreaker>(
        "ingest.shard" + std::to_string(i), options_.sink_breaker, clock_);
    shard->seed = mix_seed(0x50'4d'56u, static_cast<std::uint64_t>(i));
    const std::string instance = "shard" + std::to_string(i);
    shard->m_drops = &reg.counter(m, instance, "dropped_points");
    shard->m_spills = &reg.counter(m, instance, "spilled_points");
    shard->m_replays = &reg.counter(m, instance, "replayed_batches");
    shard->m_depth = &reg.gauge(m, instance, "queue_depth");
    shards_.push_back(std::move(shard));
  }
  wal_breaker_ = std::make_unique<CircuitBreaker>(
      "ingest.wal", options_.wal_breaker, clock_);
}

IngestEngine::~IngestEngine() { close(); }

Status IngestEngine::open() {
  if (running_) return Status::ok();
  if (options_.policy == BackpressurePolicy::kSpill && !wal_enabled()) {
    return Status::invalid_argument(
        "spill backpressure requires a WAL directory");
  }
  if (wal_enabled()) {
    WalOptions wal_options;
    wal_options.dir = options_.wal_dir;
    wal_options.segment_bytes = options_.wal_segment_bytes;
    wal_options.sync_each_append = options_.wal_sync_each_append;
    if (Status s = wal_.open(std::move(wal_options)); !s.is_ok()) return s;
    // Checkpoint snapshots hold everything that was truncated out of the
    // log; the log holds only post-checkpoint records, so loading the
    // snapshot first and then replaying reproduces the full state with no
    // duplicates.  Aggregate/continuous-query state is rebuilt only from
    // the replayed tail — checkpointed history feeds storage, not windows.
    if (Status s = load_snapshots(); !s.is_ok()) return s;
    // Recovery: re-ingest every surviving batch synchronously (workers are
    // not running yet).  The records stay in the WAL — the in-memory DB is
    // volatile, so the log remains the source of durability until an
    // explicit checkpoint.
    Status replay_status = wal_.replay([this](std::string_view payload) {
      Batch batch;
      std::size_t start = 0;
      while (start <= payload.size()) {
        std::size_t end = payload.find('\n', start);
        if (end == std::string_view::npos) end = payload.size();
        std::string_view line = payload.substr(start, end - start);
        if (!strings::trim(line).empty()) {
          auto point = tsdb::Point::from_line(line);
          if (!point) return point.status();
          batch.push_back(std::move(point.value()));
        }
        start = end + 1;
      }
      if (batch.empty()) return Status::ok();
      recovered_points_ += batch.size();
      m_recovered_->add(batch.size());
      std::vector<Batch> parts(shards_.size());
      for (tsdb::Point& p : batch) {
        parts[static_cast<std::size_t>(shard_of(p))].push_back(std::move(p));
      }
      for (std::size_t i = 0; i < parts.size(); ++i) {
        if (parts[i].empty()) continue;
        update_aggregates(*shards_[i], parts[i]);
        inserted_points_ += parts[i].size();
        if (Status s = insert_points(*shards_[i], std::move(parts[i]));
            !s.is_ok()) {
          return s;
        }
      }
      return Status::ok();
    });
    if (!replay_status.is_ok()) return replay_status;
  }
  running_ = true;
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, raw = shard.get()] {
      worker_loop(*raw);
    });
  }
  return Status::ok();
}

void IngestEngine::close() {
  if (!running_) return;
  // Draining tells the workers to abandon parked batches they cannot
  // deliver (the sink is still down): without this, flush() below would
  // wait for a recovery that may never come.  The abandoned batches are in
  // the WAL, so the next open() replays them.
  draining_.store(true, std::memory_order_release);
  (void)flush();
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  wal_.close();
  draining_.store(false, std::memory_order_relaxed);
  running_ = false;
}

Status IngestEngine::reopen() {
  if (!running_) return open();
  // The engine is alive; the supervisor believes the downstream fault is
  // fixed.  Force the breakers closed so traffic (and parked replay)
  // resumes immediately instead of waiting out cooldowns.
  for (auto& shard : shards_) shard->breaker->reset();
  wal_breaker_->reset();
  return Status::ok();
}

// --------------------------------------------------------------- write path

Status IngestEngine::submit(Batch batch) {
  return submit_internal(std::move(batch), SubmitMode::kPolicy, -1);
}

Status IngestEngine::try_submit(Batch batch) {
  return submit_internal(std::move(batch), SubmitMode::kNever, -1);
}

Status IngestEngine::submit_with_timeout(Batch batch, TimeNs timeout_ns) {
  return submit_internal(std::move(batch), SubmitMode::kTimeout, timeout_ns);
}

Status IngestEngine::write_batch(Batch points) {
  return submit(std::move(points));
}

Status IngestEngine::submit_lines(std::string_view text) {
  Batch batch;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    if (!strings::trim(line).empty()) {
      auto point = tsdb::Point::from_line(line);
      if (!point) return point.status();
      batch.push_back(std::move(point.value()));
    }
    start = end + 1;
  }
  if (batch.empty()) return Status::ok();
  return submit(std::move(batch));
}

Status IngestEngine::wal_append_batch(const Batch& batch) {
  if (!wal_enabled()) return Status::ok();
  // Breaker-guarded: a dying disk fails producers fast (kAborted) instead
  // of making every submit ride out the full retry budget.
  if (!wal_breaker_->allow()) {
    return wal_breaker_->reject_status();
  }
  std::string payload;
  for (const tsdb::Point& p : batch) {
    payload += p.to_line();
    payload += '\n';
  }
  Status result =
      retry(options_.wal_retry, *clock_, sleep_, /*seed=*/0x3a1u, [&] {
        auto lsn = wal_.append(payload);
        return lsn ? Status::ok() : lsn.status();
      });
  if (!result.is_ok()) {
    wal_breaker_->record_failure();
    wal_failures_ += 1;
    m_wal_failures_->inc();
    report_component(wal_healthy_, "ingest.wal", result);
    return result;
  }
  wal_breaker_->record_success();
  report_component(wal_healthy_, "ingest.wal", Status::ok());
  return result;
}

Status IngestEngine::submit_internal(Batch batch, SubmitMode mode,
                                     TimeNs timeout_ns) {
  if (!running_) return Status::unavailable("ingest engine not open");
  if (batch.empty()) return Status::ok();
  for (const tsdb::Point& p : batch) {
    if (p.measurement.empty()) {
      return Status::invalid_argument("point missing measurement");
    }
    if (p.fields.empty()) {
      return Status::invalid_argument("point has no fields");
    }
  }
  submitted_batches_ += 1;
  submitted_points_ += batch.size();
  m_submitted_->add(batch.size());

  // Held (shared) across append + queue hand-off so checkpoint() can never
  // truncate a record whose batch has not reached pending_ yet — the gap
  // between "in the WAL" and "counted by wait_drained" would otherwise lose
  // the batch: not in the snapshot, no longer in the log.
  std::shared_lock<std::shared_mutex> gate(checkpoint_gate_);

  // Acknowledge durability first: once the WAL append returns, the batch
  // survives a crash no matter what the queues do.
  if (Status s = wal_append_batch(batch); !s.is_ok()) return s;

  std::vector<Batch> parts(shards_.size());
  for (tsdb::Point& p : batch) {
    parts[static_cast<std::size_t>(shard_of(p))].push_back(std::move(p));
  }

  Status result = Status::ok();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].empty()) continue;
    Shard& shard = *shards_[i];
    const std::size_t n = parts[i].size();
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      ++pending_;
    }
    bool accepted = shard.queue.try_push(std::move(parts[i]));
    if (!accepted) {
      switch (mode == SubmitMode::kPolicy
                  ? options_.policy
                  : BackpressurePolicy::kDrop) {
        case BackpressurePolicy::kBlock:
          blocked_submits_ += 1;
          m_blocked_->inc();
          accepted = shard.queue.push_wait(std::move(parts[i]), -1);
          break;
        case BackpressurePolicy::kSpill: {
          std::lock_guard<std::mutex> lock(shard.spill_mutex);
          shard.spill.push_back(std::move(parts[i]));
          spilled_points_ += n;
          m_spilled_->add(n);
          shard.m_spills->add(n);
          accepted = true;
          break;
        }
        case BackpressurePolicy::kDrop:
          if (mode == SubmitMode::kTimeout) {
            blocked_submits_ += 1;
            m_blocked_->inc();
            accepted = shard.queue.push_wait(std::move(parts[i]), timeout_ns);
          }
          break;
      }
    }
    if (!accepted) {
      {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        --pending_;
      }
      pending_cv_.notify_all();
      dropped_points_ += n;
      m_dropped_->add(n);
      shard.m_drops->add(n);
      result = Status::unavailable("ingest queue full: shard " +
                                   std::to_string(i));
    } else {
      const std::size_t depth = shard.queue.size();
      shard.m_depth->set(static_cast<double>(depth));
      std::size_t seen = max_queue_depth_.load();
      while (depth > seen &&
             !max_queue_depth_.compare_exchange_weak(seen, depth)) {
      }
    }
  }
  return result;
}

// -------------------------------------------------------------- worker side

void IngestEngine::worker_loop(Shard& shard) {
  while (true) {
    std::vector<Batch> batches = shard.queue.pop_all(kWorkerIdleNs);
    // Replay parked batches first so a recovering sink sees the shard's
    // traffic in submission order.
    drain_parked(shard);
    for (Batch& batch : batches) {
      apply_batch(shard, std::move(batch));
    }
    // Drain the spill tier after each round: spilled batches are already
    // WAL-durable, this is just their deferred path into storage.
    std::deque<Batch> spilled;
    {
      std::lock_guard<std::mutex> lock(shard.spill_mutex);
      spilled.swap(shard.spill);
    }
    for (Batch& batch : spilled) {
      apply_batch(shard, std::move(batch));
    }
    if (draining_.load(std::memory_order_acquire)) drain_parked(shard);
    if (shard.queue.is_closed() && batches.empty() && spilled.empty() &&
        shard.queue.size() == 0 && shard.parked.empty()) {
      std::lock_guard<std::mutex> lock(shard.spill_mutex);
      if (shard.spill.empty()) break;
    }
  }
}

void IngestEngine::apply_batch(Shard& shard, Batch batch) {
  // During an outage keep per-shard order: new batches queue up behind the
  // parked ones instead of racing a half-open breaker.
  if (!shard.parked.empty()) {
    parked_points_ += batch.size();
    m_parked_->add(batch.size());
    shard.parked.push_back(std::move(batch));
    return;
  }
  if (Status s = deliver_batch(shard, batch); !s.is_ok()) {
    // Transient sink failure or open breaker: park.  pending_ stays
    // elevated so flush() blocks until recovery — the outage degrades to
    // latency, not loss.
    parked_points_ += batch.size();
    m_parked_->add(batch.size());
    shard.parked.push_back(std::move(batch));
    return;
  }
  note_applied(1);
}

Status IngestEngine::deliver_batch(Shard& shard, Batch& batch) {
  CircuitBreaker& breaker = *shard.breaker;
  if (!breaker.allow()) return breaker.reject_status();
  // Adaptive retry budget: without an explicit deadline, give this
  // delivery clamp(multiplier x EWMA(latency), floor, cap) of wall time —
  // observed behaviour, not a tuned constant, decides how long a retry
  // storm may run.
  RetryPolicy policy = options_.sink_retry;
  if (options_.adaptive_sink_deadline && policy.deadline_ns == 0) {
    policy.deadline_ns = options_.sink_latency_budget.deadline(
        shard.sink_latency);
  }
  const TimeNs delivery_start = clock_->now();
  // The injection point sits before the batch is moved into the sink so a
  // simulated outage leaves it intact for parking and replay.
  Status injected =
      retry(policy, *clock_, sleep_, shard.seed,
            [] { return fault::point("tsdb.write_batch"); });
  if (!injected.is_ok()) {
    breaker.record_failure();
    sink_failures_ += 1;
    m_sink_failures_->inc();
    report_component(shard.healthy, breaker.name(), injected);
    return injected;
  }
  update_aggregates(shard, batch);
  const std::size_t n = batch.size();
  if (Status s = insert_points(shard, std::move(batch)); !s.is_ok()) {
    // Points were validated at submit, so a refusal here is deterministic
    // (poison), not an outage: count it and drop rather than retry the
    // same error forever.
    rejected_points_ += n;
    breaker.record_success();  // the sink answered; don't trip
    return Status::ok();
  }
  inserted_points_ += n;
  m_inserted_->add(n);
  breaker.record_success();
  report_component(shard.healthy, breaker.name(), Status::ok());
  // Only answered deliveries feed the latency estimate: a failed one
  // measures the outage, not the sink's pace.
  shard.sink_latency.update(
      static_cast<double>(clock_->now() - delivery_start));
  shard.sink_latency_ns.store(
      static_cast<std::uint64_t>(shard.sink_latency.value()),
      std::memory_order_relaxed);
  return Status::ok();
}

TimeNs IngestEngine::sink_deadline_ns(int shard) const {
  if (options_.sink_retry.deadline_ns != 0) {
    return options_.sink_retry.deadline_ns;
  }
  if (!options_.adaptive_sink_deadline) return 0;
  // Read through the atomic mirror: this accessor runs off-worker.
  Ewma mirror;
  const std::uint64_t ewma_ns =
      shards_[static_cast<std::size_t>(shard)]->sink_latency_ns.load(
          std::memory_order_relaxed);
  if (ewma_ns > 0) mirror.update(static_cast<double>(ewma_ns));
  return options_.sink_latency_budget.deadline(mirror);
}

void IngestEngine::drain_parked(Shard& shard) {
  while (!shard.parked.empty()) {
    Batch& front = shard.parked.front();
    const std::size_t n = front.size();
    if (Status s = deliver_batch(shard, front); !s.is_ok()) break;
    replayed_points_ += n;
    m_replayed_->add(n);
    shard.m_replays->inc();
    shard.parked.pop_front();
    note_applied(1);
  }
  if (!shard.parked.empty() &&
      draining_.load(std::memory_order_acquire)) {
    // Closing with the sink still down: drop the in-memory copies.  They
    // were acknowledged against the WAL, so the next open() replays them.
    while (!shard.parked.empty()) {
      abandoned_points_ += shard.parked.front().size();
      m_abandoned_->add(shard.parked.front().size());
      shard.parked.pop_front();
      note_applied(1);
    }
  }
}

void IngestEngine::report_component(std::atomic<bool>& healthy,
                                    const std::string& name,
                                    const Status& status) {
  if (options_.health == nullptr) return;
  const bool ok = status.is_ok();
  if (healthy.exchange(ok) == ok) return;  // report transitions only
  if (ok) {
    options_.health->report_healthy(name);
  } else {
    options_.health->report_failed(name, status.message());
  }
}

void IngestEngine::update_aggregates(Shard& shard, const Batch& batch) {
  std::lock_guard<std::mutex> lock(shard.agg_mutex);
  // Batches overwhelmingly carry runs of points from one series; cache the
  // totals bucket so only the first point of a run pays the key build + map
  // lookup.
  const std::string empty_tag;
  std::string cached_measurement, cached_tag;
  std::map<std::string, FieldAggregate>* totals = nullptr;
  for (const tsdb::Point& point : batch) {
    auto tag = point.tags.find("tag");
    const std::string& tag_value =
        tag == point.tags.end() ? empty_tag : tag->second;
    if (totals == nullptr || point.measurement != cached_measurement ||
        tag_value != cached_tag) {
      totals = &shard.totals[series_key(point.measurement, tag_value)];
      cached_measurement = point.measurement;
      cached_tag = tag_value;
    }
    for (const auto& [field, value] : point.fields) {
      (*totals)[field].add(value);
    }
    for (std::size_t r = 0; r < continuous_.size(); ++r) {
      const ContinuousQuery& rule = continuous_[r];
      if (rule.source_measurement != point.measurement) continue;
      const TimeNs start = window_floor(point.time, rule.window_ns);
      WindowState& window = shard.windows[window_key(r, point, start)];
      if (window.rule == nullptr) {
        window.rule = &rule;
        window.measurement = point.measurement;
        window.tags = point.tags;
        window.window_start = start;
      }
      for (const auto& [field, value] : point.fields) {
        window.fields[field].add(value);
      }
    }
  }
}

Status IngestEngine::insert_points(Shard& shard, Batch batch) {
  tsdb::TimeSeriesDb* db =
      external_ != nullptr ? external_ : shard.storage.get();
  return db->write_batch(std::move(batch));
}

void IngestEngine::note_applied(std::size_t batches) {
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_ -= std::min(pending_, batches);
  }
  pending_cv_.notify_all();
}

void IngestEngine::wait_drained() {
  std::unique_lock<std::mutex> lock(pending_mutex_);
  pending_cv_.wait(lock, [this] { return pending_ == 0; });
}

Status IngestEngine::flush() {
  if (!running_) return Status::ok();
  flushes_ += 1;
  wait_drained();
  // The engine is quiescent here, which makes flush the natural place for
  // the segment-count trigger.  Never during close(): drain_parked may have
  // abandoned batches whose only surviving copy is in the WAL — truncating
  // now would turn their deferred replay into loss.
  if (options_.wal_max_segments > 0 && wal_enabled() &&
      !draining_.load(std::memory_order_acquire) &&
      wal_.segment_count() > options_.wal_max_segments) {
    return checkpoint();
  }
  return Status::ok();
}

Status IngestEngine::checkpoint() {
  if (!running_) return Status::unavailable("ingest engine not open");
  if (!wal_enabled()) return Status::ok();
  std::lock_guard<std::mutex> serial(checkpoint_mutex_);
  // Exclusive gate: no submit can append to the WAL (or slip into the
  // queues unobserved) between here and the truncation below.  Producers
  // stall briefly; workers keep draining, which is exactly what
  // wait_drained() needs to make the snapshot cover every logged record.
  std::unique_lock<std::shared_mutex> gate(checkpoint_gate_);
  wait_drained();
  if (Status s = write_snapshots(); !s.is_ok()) return s;
  if (Status s = wal_.checkpoint(); !s.is_ok()) return s;
  checkpoints_ += 1;
  return Status::ok();
}

std::string IngestEngine::snapshot_path(int shard) const {
  if (shard < 0) return options_.wal_dir + "/checkpoint.lp";
  return options_.wal_dir + "/checkpoint-shard" + std::to_string(shard) +
         ".lp";
}

Status IngestEngine::write_snapshots() const {
  const auto dump = [](const tsdb::TimeSeriesDb& db,
                       const std::string& path) -> Status {
    // tmp + rename: a crash mid-dump leaves the previous snapshot intact.
    const std::string tmp = path + ".tmp";
    if (Status s = db.dump_to_file(tmp); !s.is_ok()) return s;
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      return Status::internal("cannot install snapshot: " + path);
    }
    return Status::ok();
  };
  if (external_ != nullptr) return dump(*external_, snapshot_path(-1));
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (Status s = dump(*shards_[i]->storage,
                        snapshot_path(static_cast<int>(i)));
        !s.is_ok()) {
      return s;
    }
  }
  return Status::ok();
}

Status IngestEngine::load_snapshots() {
  const auto load = [](tsdb::TimeSeriesDb& db,
                       const std::string& path) -> Status {
    Status s = db.load_from_file(path);
    if (!s.is_ok() && s.code() == ErrorCode::kNotFound) {
      return Status::ok();  // never checkpointed — nothing to load
    }
    return s;
  };
  // External mode: the attached DB's owner restores its own state (the
  // daemon's load_session reads timeseries.lp, which save_session dumped
  // immediately before checkpointing) — auto-loading checkpoint.lp here
  // would double every restored point.  The snapshot still exists on disk
  // for operators recovering without a session directory.
  if (external_ != nullptr) return Status::ok();
  const std::size_t before = point_count();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (Status s = load(*shards_[i]->storage,
                        snapshot_path(static_cast<int>(i)));
        !s.is_ok()) {
      return s;
    }
  }
  const std::size_t gained = point_count() - before;
  if (gained > 0) {
    recovered_points_ += gained;
    m_recovered_->add(gained);
    inserted_points_ += gained;
  }
  return Status::ok();
}

// ------------------------------------------------------- continuous queries

Status IngestEngine::register_continuous_query(ContinuousQuery cq) {
  if (running_) {
    return Status::unsupported(
        "register continuous queries before open()");
  }
  if (cq.source_measurement.empty()) {
    return Status::invalid_argument("continuous query needs a source");
  }
  if (cq.window_ns <= 0) {
    return Status::invalid_argument("continuous query window must be > 0");
  }
  static const std::set<std::string> kAggs = {"mean", "min",   "max",
                                              "sum",  "count", "stddev"};
  if (kAggs.find(cq.aggregate) == kAggs.end()) {
    return Status::invalid_argument("unsupported aggregate: " + cq.aggregate);
  }
  if (cq.target_measurement.empty()) {
    cq.target_measurement = cq.source_measurement + "_" + cq.aggregate +
                            "_" + std::to_string(cq.window_ns) + "ns";
  }
  continuous_.push_back(std::move(cq));
  return Status::ok();
}

Status IngestEngine::close_windows(TimeNs watermark) {
  if (Status s = flush(); !s.is_ok()) return s;
  for (auto& shard : shards_) {
    Batch emitted;
    {
      std::lock_guard<std::mutex> lock(shard->agg_mutex);
      for (auto it = shard->windows.begin(); it != shard->windows.end();) {
        const WindowState& window = it->second;
        if (window.window_start + window.rule->window_ns > watermark) {
          ++it;
          continue;
        }
        tsdb::Point point;
        point.measurement = window.rule->target_measurement;
        point.tags = window.tags;
        point.time = window.window_start;
        for (const auto& [field, agg] : window.fields) {
          point.fields[field] = agg.value(window.rule->aggregate);
        }
        emitted.push_back(std::move(point));
        it = shard->windows.erase(it);
      }
    }
    if (!emitted.empty()) {
      downsampled_points_ += emitted.size();
      // Downsampled points go straight into this shard's storage (queries
      // merge across shards, so placement does not affect results) and
      // bypass the WAL: they are derivable from the raw log.
      if (Status s = insert_points(*shard, std::move(emitted)); !s.is_ok()) {
        return s;
      }
    }
  }
  return Status::ok();
}

std::map<std::string, FieldAggregate> IngestEngine::series_aggregates(
    std::string_view measurement, std::string_view tag) const {
  const std::string key =
      series_key(std::string(measurement), tag);
  std::map<std::string, FieldAggregate> merged;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->agg_mutex);
    auto it = shard->totals.find(key);
    if (it == shard->totals.end()) continue;
    for (const auto& [field, agg] : it->second) {
      merged[field].merge(agg);
    }
  }
  return merged;
}

// ---------------------------------------------------------------- read path

Expected<tsdb::QueryResult> IngestEngine::query(
    std::string_view text) const {
  if (external_ != nullptr) return query::run(*external_, text);
  std::vector<const tsdb::TimeSeriesDb*> shards;
  shards.reserve(shards_.size());
  for (const auto& shard : shards_) shards.push_back(shard->storage.get());
  return query::run_sharded(shards, text);
}

std::size_t IngestEngine::point_count() const {
  if (external_ != nullptr) return external_->point_count();
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->storage->point_count();
  return total;
}

std::vector<std::string> IngestEngine::measurements() const {
  if (external_ != nullptr) return external_->measurements();
  std::set<std::string> names;
  for (const auto& shard : shards_) {
    for (auto& name : shard->storage->measurements()) {
      names.insert(std::move(name));
    }
  }
  return {names.begin(), names.end()};
}

// ------------------------------------------------------------ introspection

int IngestEngine::shard_of(const tsdb::Point& point) const {
  std::uint64_t hash = fnv1a(14695981039346656037ULL, point.measurement);
  hash = fnv1a(hash, "\x1f");
  for (const auto& [k, v] : point.tags) {
    hash = fnv1a(hash, k);
    hash = fnv1a(hash, "=");
    hash = fnv1a(hash, v);
    hash = fnv1a(hash, ",");
  }
  return static_cast<int>(hash % shards_.size());
}

IngestStats IngestEngine::stats() const {
  IngestStats s;
  s.submitted_batches = submitted_batches_.load();
  s.submitted_points = submitted_points_.load();
  s.inserted_points = inserted_points_.load();
  s.dropped_points = dropped_points_.load();
  s.spilled_points = spilled_points_.load();
  s.blocked_submits = blocked_submits_.load();
  s.recovered_points = recovered_points_.load();
  s.downsampled_points = downsampled_points_.load();
  s.wal_records = wal_.record_count();
  s.wal_bytes = wal_.bytes_appended();
  s.flushes = flushes_.load();
  s.checkpoints = checkpoints_.load();
  s.max_queue_depth = max_queue_depth_.load();
  s.sink_failures = sink_failures_.load();
  s.wal_failures = wal_failures_.load();
  s.parked_points = parked_points_.load();
  s.replayed_points = replayed_points_.load();
  s.rejected_points = rejected_points_.load();
  s.abandoned_points = abandoned_points_.load();
  for (const auto& shard : shards_) {
    s.sink_latency_ewma_ns =
        std::max(s.sink_latency_ewma_ns,
                 shard->sink_latency_ns.load(std::memory_order_relaxed));
  }
  return s;
}

Status IngestEngine::publish_self_telemetry(TimeNs now,
                                            std::string_view tag) {
  const IngestStats s = stats();
  tsdb::Point point;
  point.measurement = metrics::kMeasurementIngest;
  point.tags["tier"] = "ingest";
  if (!tag.empty()) point.tags["tag"] = std::string(tag);
  point.time = now;
  point.fields["submitted_points"] =
      static_cast<double>(s.submitted_points);
  point.fields["inserted_points"] = static_cast<double>(s.inserted_points);
  point.fields["dropped_points"] = static_cast<double>(s.dropped_points);
  point.fields["spilled_points"] = static_cast<double>(s.spilled_points);
  point.fields["blocked_submits"] = static_cast<double>(s.blocked_submits);
  point.fields["downsampled_points"] =
      static_cast<double>(s.downsampled_points);
  point.fields["wal_records"] = static_cast<double>(s.wal_records);
  point.fields["max_queue_depth"] = static_cast<double>(s.max_queue_depth);
  Batch batch;
  batch.push_back(std::move(point));
  return submit_internal(std::move(batch), SubmitMode::kNever, -1);
}

}  // namespace pmove::ingest
