// Append-only write-ahead log for ingestion batches.
//
// The paper's PCP pipeline acknowledges nothing and loses whatever arrives
// while it is busy (Table III).  The ingest tier instead appends every
// acknowledged batch here before it is queued, so a crash between
// acknowledgment and DB insertion loses nothing: recovery replays the log.
//
// Layout: <dir>/wal-<seq>.seg, each segment a sequence of records
//
//   [u32 magic][u32 payload_len][u32 crc32(payload)][payload bytes]
//
// Segments rotate at segment_bytes; recovery scans segments in sequence
// order, validates every record's CRC, truncates a torn/corrupt tail record
// and discards anything after it.  checkpoint() deletes all segments once
// their contents are durable elsewhere (e.g. after TimeSeriesDb::
// dump_to_file or retention enforcement made them obsolete).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/registry.hpp"
#include "util/status.hpp"

namespace pmove::ingest {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
std::uint32_t crc32(std::string_view data);

struct WalOptions {
  std::string dir;
  std::size_t segment_bytes = 1u << 20;
  /// fsync after every append (durability vs throughput knob).
  bool sync_each_append = false;
};

struct WalRecoveryStats {
  std::size_t segments = 0;         ///< segment files found
  std::size_t records = 0;          ///< valid records recovered
  std::size_t truncated_bytes = 0;  ///< bytes cut off a torn/corrupt tail
};

class Wal {
 public:
  Wal() = default;
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens (creating the directory if needed), validates existing segments
  /// and positions the append cursor after the last valid record.
  Status open(WalOptions options);

  /// Invokes `apply` on every valid record payload, in append order.
  Status replay(const std::function<Status(std::string_view)>& apply) const;

  /// Appends one record; returns its log sequence number.  The record is
  /// on disk (modulo OS cache; see sync_each_append) when this returns.
  /// Safe to call from concurrent producers; records serialize internally.
  Expected<std::uint64_t> append(std::string_view payload);

  /// Drops every segment: all logged data is durable elsewhere.  The next
  /// append starts a fresh segment.
  Status checkpoint();

  void close();

  [[nodiscard]] bool is_open() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return file_ != nullptr;
  }
  [[nodiscard]] const WalRecoveryStats& recovery() const { return recovery_; }
  [[nodiscard]] std::uint64_t record_count() const {
    return record_count_.load();
  }
  [[nodiscard]] std::uint64_t bytes_appended() const {
    return bytes_appended_.load();
  }
  [[nodiscard]] std::size_t segment_count() const;

 private:
  [[nodiscard]] std::string segment_path(std::uint64_t seq) const;
  /// Sorted sequence numbers of existing segment files.
  [[nodiscard]] std::vector<std::uint64_t> list_segments() const;
  Status open_segment(std::uint64_t seq, bool truncate);

  /// Serializes append/rotate/checkpoint/close across producer threads.
  mutable std::mutex mutex_;
  WalOptions options_;
  std::FILE* file_ = nullptr;
  std::uint64_t current_seq_ = 0;
  std::size_t current_bytes_ = 0;
  /// Valid records across all segments / payload bytes appended this run.
  /// Atomic so stats reads don't take the append lock.
  std::atomic<std::uint64_t> record_count_{0};
  std::atomic<std::uint64_t> bytes_appended_{0};
  WalRecoveryStats recovery_;

  // pmove_wal self-telemetry (instance "wal"), acquired on open().  The
  // records gauge doubles as checkpoint lag: records appended since the
  // last checkpoint dropped all segments.
  metrics::Counter* m_appends_ = nullptr;
  metrics::Counter* m_append_failures_ = nullptr;
  metrics::Counter* m_fsyncs_ = nullptr;
  metrics::Counter* m_rollbacks_ = nullptr;
  metrics::Counter* m_checkpoints_ = nullptr;
  metrics::Gauge* m_records_ = nullptr;
};

}  // namespace pmove::ingest
