// Sharded, batched, WAL-backed telemetry ingestion engine.
//
// Sits between the samplers and the storage tier (TimeSeriesDb / SuperDb)
// and replaces the paper's lossy "no buffer or queue mechanism" shipping
// path (Section V-A, Table III) with a real ingestion tier:
//
//   * sharding     — points are routed by hash(measurement, tags) onto N
//                    shards, each with its own bounded MPSC queue and worker
//                    thread, so concurrent writers never contend on one
//                    mutex;
//   * batching     — writers submit whole batches that are decoded once and
//                    bulk-inserted per shard (TimeSeriesDb::write_batch);
//   * backpressure — a full queue triggers one of {drop, block, spill}
//                    instead of unconditional loss;
//   * durability   — every acknowledged batch is appended to a CRC-checked
//                    write-ahead log before it is queued; recovery-on-open
//                    replays the log into storage;
//   * continuous queries — registered downsampling rules run incrementally
//                    on ingest and emit aggregated points without rescanning
//                    raw data, feeding superdb's AGGObservationInterface.
//
// Storage modes: by default each shard owns a private TimeSeriesDb and
// queries merge across shards (tsdb::query_sharded); alternatively the
// engine can be attached to an external TimeSeriesDb (the daemon's), where
// shards act as batching/backpressure stages in front of the shared DB.
//
// The engine also keeps self-telemetry counters (points/sec, queue depths,
// drops, spills) exposed as an ObservationInterface-able measurement so
// P-MoVE can monitor its own ingestion tier.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "ingest/aggregate.hpp"
#include "ingest/ring_buffer.hpp"
#include "ingest/wal.hpp"
#include "metrics/registry.hpp"
#include "tsdb/db.hpp"
#include "tsdb/sink.hpp"
#include "util/breaker.hpp"
#include "util/clock.hpp"
#include "util/ewma.hpp"
#include "util/health.hpp"
#include "util/retry.hpp"
#include "util/status.hpp"

namespace pmove::ingest {

/// What happens to a batch whose target shard queue is full.
enum class BackpressurePolicy {
  kDrop,   ///< count it and lose it (the paper's Table III behaviour)
  kBlock,  ///< the producer waits for queue space — zero loss
  kSpill,  ///< park it in the spill tier (WAL-durable) — zero loss
};

std::string_view to_string(BackpressurePolicy policy);
Expected<BackpressurePolicy> parse_backpressure(std::string_view name);

struct IngestOptions {
  int shard_count = 4;
  /// Batches per shard queue.
  std::size_t queue_capacity = 64;
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  /// Empty = no WAL (no durability, no spill backing store).
  std::string wal_dir;
  std::size_t wal_segment_bytes = 1u << 20;
  bool wal_sync_each_append = false;
  /// Automatic checkpoint trigger: when a flush() finds more than this many
  /// WAL segments on disk, the engine checkpoints (snapshot storage into
  /// <wal_dir>/checkpoint*.lp, then truncate the log).  0 = no automatic
  /// trigger; checkpoint() remains available.  Env: PMOVE_WAL_MAX_SEGMENTS.
  std::size_t wal_max_segments = 0;

  // ----------------------------------------------------------- resilience
  /// Retry budget for one delivery attempt into the storage sink (per
  /// batch, inside the shard worker).
  RetryPolicy sink_retry;
  /// Adaptive retry budget (ROADMAP): when enabled and `sink_retry` has no
  /// explicit deadline, each shard derives its delivery deadline from the
  /// EWMA of its observed sink latencies — deadline = clamp(multiplier x
  /// ewma, floor, cap) — so a healthy 50 us sink fails fast while a sink
  /// that legitimately takes 20 ms gets room, without retuning constants.
  /// An explicit `sink_retry.deadline_ns` always wins.
  bool adaptive_sink_deadline = true;
  /// The floor doubles as the pre-warm-up deadline; it is deliberately far
  /// above the worst-case jitter sleep of the default policy, so enabling
  /// adaptation never tightens a default-configured engine.
  LatencyBudget sink_latency_budget{.multiplier = 8.0,
                                    .floor_ns = 250'000'000,
                                    .cap_ns = 10'000'000'000};
  /// Retry budget for WAL appends (on the producer's submit path — keep
  /// the deadline short so submit latency stays bounded).
  RetryPolicy wal_retry{.max_attempts = 2, .deadline_ns = 50'000'000};
  /// Breaker in front of each shard's storage sink; while open, batches
  /// park in the worker (WAL-durable) and replay on half-open success.
  BreakerOptions sink_breaker;
  BreakerOptions wal_breaker;
  /// Optional: ingest components ("ingest.wal", "ingest.shard<i>") report
  /// state transitions here.  Not owned; must outlive the engine.
  HealthRegistry* health = nullptr;
  /// Time source for breakers / retry deadlines (nullptr = wall clock) and
  /// the sleep used between retries (empty = real sleep).  Tests inject a
  /// VirtualClock and a sleep that advances it.
  const Clock* clock = nullptr;
  SleepFn sleep;
};

/// A registered continuous downsampling rule: every `window_ns` window of
/// `source_measurement` is reduced with `aggregate` (mean/min/max/sum/count/
/// stddev) per field per tag set, and emitted into `target_measurement`
/// (stamped with the window start) when the watermark passes the window end.
struct ContinuousQuery {
  std::string source_measurement;
  std::string aggregate = "mean";
  TimeNs window_ns = kNsPerSec;
  std::string target_measurement;  ///< default: "<source>_<agg>_<window>"
};

/// Monotonic self-telemetry counters (snapshot).
struct IngestStats {
  std::uint64_t submitted_batches = 0;
  std::uint64_t submitted_points = 0;
  std::uint64_t inserted_points = 0;   ///< applied to storage
  std::uint64_t dropped_points = 0;    ///< lost to kDrop backpressure
  std::uint64_t spilled_points = 0;    ///< routed through the spill tier
  std::uint64_t blocked_submits = 0;   ///< submits that had to wait
  std::uint64_t recovered_points = 0;  ///< replayed from the WAL on open
  std::uint64_t downsampled_points = 0;  ///< emitted by continuous queries
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t flushes = 0;
  std::uint64_t checkpoints = 0;  ///< snapshot+truncate cycles completed
  std::size_t max_queue_depth = 0;
  // Resilience counters.
  std::uint64_t sink_failures = 0;   ///< failed delivery attempts (post-retry)
  std::uint64_t wal_failures = 0;    ///< failed WAL appends (post-retry)
  std::uint64_t parked_points = 0;   ///< points parked while the sink was down
  std::uint64_t replayed_points = 0; ///< parked points delivered on recovery
  std::uint64_t rejected_points = 0; ///< poison batches the sink refused
  std::uint64_t abandoned_points = 0;  ///< parked points dropped at close()
                                       ///< (still WAL-durable)
  /// Worst per-shard EWMA of observed sink delivery latency (0 until the
  /// first delivery); the adaptive retry deadline is derived from this.
  std::uint64_t sink_latency_ewma_ns = 0;
};

class IngestEngine final : public tsdb::PointSink {
 public:
  /// `external` != nullptr attaches the engine to an existing DB instead of
  /// per-shard storage.  Call open() before submitting.
  explicit IngestEngine(IngestOptions options,
                        tsdb::TimeSeriesDb* external = nullptr);
  ~IngestEngine() override;

  IngestEngine(const IngestEngine&) = delete;
  IngestEngine& operator=(const IngestEngine&) = delete;

  /// Opens the WAL (replaying any surviving records into storage) and
  /// starts the shard workers.
  Status open();

  /// Flushes, stops workers, closes the WAL.  Idempotent.
  void close();

  // ----------------------------------------------------------- write path

  /// Submits a batch under the configured backpressure policy.  On return
  /// the batch is acknowledged: durable in the WAL (when enabled) and
  /// queued, spilled, or — under kDrop with full queues — counted as lost.
  Status submit(std::vector<tsdb::Point> batch);

  /// Never blocks: full queues drop (regardless of policy) and report
  /// kUnavailable.
  Status try_submit(std::vector<tsdb::Point> batch);

  /// Blocks at most `timeout_ns` for queue space, then reports
  /// kUnavailable (points beyond the timeout are dropped).
  Status submit_with_timeout(std::vector<tsdb::Point> batch,
                             TimeNs timeout_ns);

  /// Line-protocol entry point: decodes once, then submit().
  Status submit_lines(std::string_view text);

  // PointSink: lets samplers target the engine transparently (single
  // points arrive through the base-class write() convenience).
  Status write_batch(std::vector<tsdb::Point> points) override;

  /// Blocks until every queued and spilled batch has been applied.  When
  /// `wal_max_segments` is set and the WAL has outgrown it, finishes with an
  /// automatic checkpoint() — flush is the engine's quiescent point, so it
  /// doubles as the segment-count trigger.
  Status flush();

  /// Durability checkpoint: drains in-flight batches, snapshots storage to
  /// <wal_dir>/checkpoint[-shard<i>].lp (atomic tmp+rename), then truncates
  /// every WAL segment.  Producers pause at the WAL gate for the duration,
  /// so no acknowledged record can fall between snapshot and truncation.
  /// Per-shard storage: the next open() loads the snapshots before
  /// replaying the (short) log.  External storage: the snapshot is written
  /// but NOT auto-loaded on open — the attached DB's owner restores state
  /// (the daemon's save_session dumps, then calls this; load_session
  /// restores the dump and open() replays only the post-checkpoint tail).
  /// No-op without a WAL.  Replaces the manual-only wal().checkpoint() flow.
  Status checkpoint();

  // ------------------------------------------------- continuous queries

  Status register_continuous_query(ContinuousQuery cq);

  /// Flushes, then emits every continuous-query window that closed at or
  /// before `watermark` into storage.
  Status close_windows(TimeNs watermark);

  /// Running (since open) aggregates of `measurement` restricted to points
  /// whose "tag" tag equals `tag` — maintained incrementally on ingest, so
  /// building an AGGObservationInterface needs no raw-point rescan.
  [[nodiscard]] std::map<std::string, FieldAggregate> series_aggregates(
      std::string_view measurement, std::string_view tag) const;

  // ------------------------------------------------------------ read path

  /// Query over the full data set; per-shard slices are merged so results
  /// match a single-DB query over the union (external mode: delegates).
  [[nodiscard]] Expected<tsdb::QueryResult> query(
      std::string_view text) const;

  [[nodiscard]] std::size_t point_count() const;
  [[nodiscard]] std::vector<std::string> measurements() const;

  // -------------------------------------------------------- introspection

  /// Deterministic shard routing (FNV-1a over measurement and tags).
  [[nodiscard]] int shard_of(const tsdb::Point& point) const;
  [[nodiscard]] int shard_count() const {
    return static_cast<int>(shards_.size());
  }

  [[nodiscard]] IngestStats stats() const;

  /// Ingests one "pmove_ingest" self-telemetry point carrying the current
  /// counters, so the engine's own health lands in the monitored DB.
  Status publish_self_telemetry(TimeNs now, std::string_view tag = "");

  [[nodiscard]] bool wal_enabled() const { return !options_.wal_dir.empty(); }
  [[nodiscard]] const Wal& wal() const { return wal_; }

  // --------------------------------------------------------- resilience

  /// Supervisor hook: clears breakers (and reopens everything when the
  /// engine was closed) after the operator / supervisor fixed the fault.
  Status reopen();

  /// Breaker in front of shard `i`'s storage sink (introspection/tests).
  [[nodiscard]] const CircuitBreaker& sink_breaker(int shard) const {
    return *shards_[static_cast<std::size_t>(shard)]->breaker;
  }
  /// The delivery deadline shard `i` would use right now: the explicit
  /// `sink_retry.deadline_ns` if set, else the EWMA-derived adaptive
  /// budget (0 when adaptation is disabled too).
  [[nodiscard]] TimeNs sink_deadline_ns(int shard) const;
  [[nodiscard]] const CircuitBreaker& wal_breaker() const {
    return *wal_breaker_;
  }

 private:
  using Batch = std::vector<tsdb::Point>;

  struct WindowState {
    const ContinuousQuery* rule = nullptr;
    std::string measurement;
    std::map<std::string, std::string> tags;
    TimeNs window_start = 0;
    std::map<std::string, FieldAggregate> fields;
  };

  struct Shard {
    explicit Shard(std::size_t queue_capacity) : queue(queue_capacity) {}
    BoundedQueue<Batch> queue;
    std::unique_ptr<tsdb::TimeSeriesDb> storage;  ///< null in external mode
    std::thread worker;
    // Spill tier: overflow batches (already WAL-durable) the worker drains
    // after each queue round.
    std::mutex spill_mutex;
    std::deque<Batch> spill;
    // Delivery resilience: breaker in front of the storage sink, plus the
    // worker-private park list of batches whose delivery failed.  Parked
    // batches keep pending_ elevated (flush() blocks) and replay in order
    // once the breaker lets traffic through again.
    std::unique_ptr<CircuitBreaker> breaker;
    std::deque<Batch> parked;
    std::uint64_t seed = 0;          ///< retry-jitter stream
    std::atomic<bool> healthy{true};  ///< last reported sink health
    // Adaptive retry budget: EWMA of successful delivery latencies,
    // worker-confined (only this shard's worker updates or reads it on the
    // delivery path); the atomic mirror is for stats()/introspection.
    Ewma sink_latency;
    std::atomic<std::uint64_t> sink_latency_ns{0};
    // Incremental aggregate state, touched only by this shard's worker
    // thread (and by close_windows/series_aggregates after a flush).
    mutable std::mutex agg_mutex;
    std::map<std::string, std::map<std::string, FieldAggregate>> totals;
    std::map<std::string, WindowState> windows;
    // pmove_ingest self-telemetry, instance "shard<i>".  All engines in the
    // process share these series (the registry is global); the per-engine
    // atomics below remain the authoritative per-instance stats.
    metrics::Counter* m_drops = nullptr;
    metrics::Counter* m_spills = nullptr;
    metrics::Counter* m_replays = nullptr;  ///< parked batches replayed
    metrics::Gauge* m_depth = nullptr;      ///< queue depth at last submit
  };

  enum class SubmitMode { kPolicy, kNever, kTimeout };

  Status submit_internal(Batch batch, SubmitMode mode, TimeNs timeout_ns);
  Status wal_append_batch(const Batch& batch);
  /// flush() minus the auto-checkpoint trigger (checkpoint() itself needs
  /// to drain without recursing).
  void wait_drained();
  /// Loads checkpoint snapshot files into storage (recovery, before WAL
  /// replay).  Missing files are fine — there was no checkpoint yet.
  Status load_snapshots();
  Status write_snapshots() const;
  [[nodiscard]] std::string snapshot_path(int shard) const;
  void worker_loop(Shard& shard);
  void apply_batch(Shard& shard, Batch batch);
  void update_aggregates(Shard& shard, const Batch& batch);
  Status insert_points(Shard& shard, Batch batch);
  void note_applied(std::size_t batches);
  /// One guarded delivery attempt: breaker -> retry -> sink.  ok() means
  /// the batch is in storage (or was poison and got counted + dropped);
  /// anything else means "sink down, park me".
  Status deliver_batch(Shard& shard, Batch& batch);
  /// Replays parked batches in order while the breaker allows; when the
  /// engine is draining (close()) leftover batches are abandoned — they
  /// stay recoverable in the WAL.
  void drain_parked(Shard& shard);
  void report_component(std::atomic<bool>& healthy, const std::string& name,
                        const Status& status);

  IngestOptions options_;
  tsdb::TimeSeriesDb* external_ = nullptr;
  const Clock* clock_ = nullptr;  ///< never null after construction
  SleepFn sleep_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<ContinuousQuery> continuous_;  ///< frozen while running
  Wal wal_;
  std::unique_ptr<CircuitBreaker> wal_breaker_;
  std::atomic<bool> wal_healthy_{true};
  std::atomic<bool> draining_{false};  ///< close() in progress
  bool running_ = false;

  // Batches accepted but not yet applied; flush() waits for zero.
  std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  std::size_t pending_ = 0;

  // Checkpoint consistency: submits hold the gate shared for their whole
  // acknowledge path (WAL append + queue hand-off), checkpoint() holds it
  // exclusive across snapshot + truncation.  checkpoint_mutex_ serializes
  // concurrent checkpoint() callers.
  std::shared_mutex checkpoint_gate_;
  std::mutex checkpoint_mutex_;
  std::atomic<std::uint64_t> checkpoints_{0};

  std::atomic<std::uint64_t> submitted_batches_{0};
  std::atomic<std::uint64_t> submitted_points_{0};
  std::atomic<std::uint64_t> inserted_points_{0};
  std::atomic<std::uint64_t> dropped_points_{0};
  std::atomic<std::uint64_t> spilled_points_{0};
  std::atomic<std::uint64_t> blocked_submits_{0};
  std::atomic<std::uint64_t> recovered_points_{0};
  std::atomic<std::uint64_t> downsampled_points_{0};
  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::size_t> max_queue_depth_{0};
  std::atomic<std::uint64_t> sink_failures_{0};
  std::atomic<std::uint64_t> wal_failures_{0};
  std::atomic<std::uint64_t> parked_points_{0};
  std::atomic<std::uint64_t> replayed_points_{0};
  std::atomic<std::uint64_t> rejected_points_{0};
  std::atomic<std::uint64_t> abandoned_points_{0};

  // Engine-level pmove_ingest self-telemetry (instance "engine").
  metrics::Counter* m_submitted_ = nullptr;
  metrics::Counter* m_inserted_ = nullptr;
  metrics::Counter* m_dropped_ = nullptr;
  metrics::Counter* m_spilled_ = nullptr;
  metrics::Counter* m_blocked_ = nullptr;
  metrics::Counter* m_parked_ = nullptr;
  metrics::Counter* m_replayed_ = nullptr;
  metrics::Counter* m_abandoned_ = nullptr;
  metrics::Counter* m_recovered_ = nullptr;
  metrics::Counter* m_sink_failures_ = nullptr;
  metrics::Counter* m_wal_failures_ = nullptr;
};

}  // namespace pmove::ingest
