#include "ingest/wal.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>

#ifdef __unix__
#include <unistd.h>
#endif

#include "fault/fault.hpp"
#include "metrics/names.hpp"

namespace pmove::ingest {

namespace fs = std::filesystem;

namespace {

/// "<what> (<segment path>): <strerror(errno)>" — every I/O failure names
/// the file and the OS error so operators can act on the message.
Status io_error(std::string_view what, const std::string& path,
                int saved_errno) {
  std::string message{what};
  message += " (";
  message += path;
  message += ")";
  if (saved_errno != 0) {
    message += ": ";
    message += std::strerror(saved_errno);
  }
  return Status::unavailable(std::move(message));
}

constexpr std::uint32_t kMagic = 0x504D'574Cu;  // "PMWL"
constexpr std::size_t kHeaderBytes = 12;        // magic + len + crc
constexpr std::size_t kMaxPayload = 64u << 20;  // sanity bound for recovery

// Header fields are written in native byte order: the WAL is a local
// crash-recovery log, never shipped across machines.
void encode_header(std::array<char, kHeaderBytes>& out, std::uint32_t len,
                   std::uint32_t crc) {
  std::memcpy(out.data(), &kMagic, 4);
  std::memcpy(out.data() + 4, &len, 4);
  std::memcpy(out.data() + 8, &crc, 4);
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB8'8320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFF'FFFFu;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFF'FFFFu;
}

Wal::~Wal() { close(); }

std::string Wal::segment_path(std::uint64_t seq) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.seg",
                static_cast<unsigned long long>(seq));
  return (fs::path(options_.dir) / buf).string();
}

std::vector<std::uint64_t> Wal::list_segments() const {
  std::vector<std::uint64_t> seqs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long seq = 0;
    if (std::sscanf(name.c_str(), "wal-%llu.seg", &seq) == 1) {
      seqs.push_back(seq);
    }
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

Status Wal::open(WalOptions options) {
  close();
  options_ = std::move(options);
  if (options_.dir.empty()) {
    return Status::invalid_argument("WAL directory not set");
  }
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    return Status::unavailable("cannot create WAL dir " + options_.dir +
                               ": " + ec.message());
  }

  {
    metrics::Registry& reg = metrics::Registry::global();
    const char* m = metrics::kMeasurementWal;
    m_appends_ = &reg.counter(m, "wal", "appends");
    m_append_failures_ = &reg.counter(m, "wal", "append_failures");
    m_fsyncs_ = &reg.counter(m, "wal", "fsyncs");
    m_rollbacks_ = &reg.counter(m, "wal", "rollbacks");
    m_checkpoints_ = &reg.counter(m, "wal", "checkpoints");
    m_records_ = &reg.gauge(m, "wal", "records");
  }

  recovery_ = {};
  record_count_ = 0;
  const auto seqs = list_segments();
  recovery_.segments = seqs.size();

  // Validate every segment in order.  The first bad record marks the end of
  // history: the segment is truncated there and later segments (which would
  // be out of order w.r.t. the lost tail) are dropped.
  bool corrupted = false;
  std::uint64_t last_valid_seq = seqs.empty() ? 0 : seqs.back();
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    const std::string path = segment_path(seqs[i]);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return io_error("cannot open WAL segment", path, errno);
    }
    long valid_end = 0;
    std::string payload;
    while (true) {
      std::array<char, kHeaderBytes> header{};
      if (std::fread(header.data(), 1, kHeaderBytes, f) != kHeaderBytes) {
        break;  // clean EOF or torn header
      }
      std::uint32_t magic = 0, len = 0, crc = 0;
      std::memcpy(&magic, header.data(), 4);
      std::memcpy(&len, header.data() + 4, 4);
      std::memcpy(&crc, header.data() + 8, 4);
      if (magic != kMagic || len > kMaxPayload) break;
      payload.resize(len);
      if (std::fread(payload.data(), 1, len, f) != len) break;  // torn tail
      if (crc32(payload) != crc) break;                         // bit rot
      valid_end = std::ftell(f);
      ++record_count_;
      ++recovery_.records;
    }
    std::fseek(f, 0, SEEK_END);
    const long file_end = std::ftell(f);
    std::fclose(f);
    if (valid_end != file_end) {
      recovery_.truncated_bytes +=
          static_cast<std::size_t>(file_end - valid_end);
      fs::resize_file(path, static_cast<std::uintmax_t>(valid_end), ec);
      corrupted = true;
    }
    if (corrupted) {
      last_valid_seq = seqs[i];
      for (std::size_t j = i + 1; j < seqs.size(); ++j) {
        recovery_.truncated_bytes += static_cast<std::size_t>(
            fs::file_size(segment_path(seqs[j]), ec));
        fs::remove(segment_path(seqs[j]), ec);
      }
      break;
    }
  }

  current_seq_ = seqs.empty() ? 1 : last_valid_seq;
  return open_segment(current_seq_, /*truncate=*/false);
}

Status Wal::open_segment(std::uint64_t seq, bool truncate) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  const std::string path = segment_path(seq);
  file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file_ == nullptr) {
    return io_error("cannot open WAL segment", path, errno);
  }
  current_seq_ = seq;
  // "ab" streams report position 0 until the first write; seek explicitly.
  std::fseek(file_, 0, SEEK_END);
  const long pos = std::ftell(file_);
  current_bytes_ = pos < 0 ? 0 : static_cast<std::size_t>(pos);
  return Status::ok();
}

Status Wal::replay(
    const std::function<Status(std::string_view)>& apply) const {
  for (std::uint64_t seq : list_segments()) {
    const std::string path = segment_path(seq);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return io_error("cannot open WAL segment", path, errno);
    }
    std::string payload;
    while (true) {
      std::array<char, kHeaderBytes> header{};
      if (std::fread(header.data(), 1, kHeaderBytes, f) != kHeaderBytes) {
        break;
      }
      std::uint32_t magic = 0, len = 0, crc = 0;
      std::memcpy(&magic, header.data(), 4);
      std::memcpy(&len, header.data() + 4, 4);
      std::memcpy(&crc, header.data() + 8, 4);
      if (magic != kMagic || len > kMaxPayload) break;
      payload.resize(len);
      if (std::fread(payload.data(), 1, len, f) != len) break;
      if (crc32(payload) != crc) break;
      if (Status s = apply(payload); !s.is_ok()) {
        std::fclose(f);
        return s;
      }
    }
    std::fclose(f);
  }
  return Status::ok();
}

Expected<std::uint64_t> Wal::append(std::string_view payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) {
    return Status::unavailable("WAL not open");
  }
  if (Status s = fault::point("wal.append"); !s.is_ok()) {
    m_append_failures_->inc();
    return s;
  }
  if (current_bytes_ >= options_.segment_bytes) {
    if (Status s = open_segment(current_seq_ + 1, /*truncate=*/true);
        !s.is_ok()) {
      return s;
    }
  }
  const std::string path = segment_path(current_seq_);

  // Torn-write injection: write the header and only a prefix of the payload,
  // then report failure — exactly what a crash mid-record leaves behind.
  // Recovery truncates the torn record; later appends in THIS process would
  // land after it and be discarded by that truncation, so a torn point
  // should be followed by close() + reopen (the crash it simulates).
  if (const auto torn = fault::fires("wal.append.torn"); torn.has_value()) {
    std::array<char, kHeaderBytes> header{};
    encode_header(header, static_cast<std::uint32_t>(payload.size()),
                  crc32(payload));
    const std::size_t keep =
        std::min<std::size_t>(payload.size(),
                              static_cast<std::size_t>(torn->count));
    (void)std::fwrite(header.data(), 1, kHeaderBytes, file_);
    (void)std::fwrite(payload.data(), 1, keep, file_);
    (void)std::fflush(file_);
    current_bytes_ += kHeaderBytes + keep;
    m_append_failures_->inc();
    return io_error("WAL append torn (injected crash)", path, 0);
  }

  // Remember where the record starts so a failed write can be rolled back:
  // leaving half a record in place would make recovery discard everything
  // appended after it.
  const long record_start = std::ftell(file_);
  const auto rollback = [&] {
    m_rollbacks_->inc();
    m_append_failures_->inc();
    std::clearerr(file_);
    if (record_start >= 0) {
      std::fseek(file_, record_start, SEEK_SET);
#ifdef __unix__
      (void)::ftruncate(::fileno(file_), record_start);
#endif
    }
  };

  std::array<char, kHeaderBytes> header{};
  encode_header(header, static_cast<std::uint32_t>(payload.size()),
                crc32(payload));
  if (std::fwrite(header.data(), 1, kHeaderBytes, file_) != kHeaderBytes ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    const int saved_errno = errno;
    rollback();
    return io_error("WAL append write failed", path, saved_errno);
  }
  if (std::fflush(file_) != 0) {
    const int saved_errno = errno;
    rollback();
    return io_error("WAL append flush failed", path, saved_errno);
  }
  if (options_.sync_each_append) {
    if (Status s = fault::point("wal.append.fsync"); !s.is_ok()) {
      rollback();
      return io_error("WAL fsync failed (injected): " + s.message(), path, 0);
    }
#ifdef __unix__
    if (::fsync(::fileno(file_)) != 0) {
      const int saved_errno = errno;
      rollback();
      return io_error("WAL fsync failed", path, saved_errno);
    }
#endif
    m_fsyncs_->inc();
  }
  current_bytes_ += kHeaderBytes + payload.size();
  bytes_appended_ += payload.size();
  m_appends_->inc();
  const std::uint64_t lsn = record_count_++;
  m_records_->set(static_cast<double>(lsn + 1));
  return lsn;
}

Status Wal::checkpoint() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Status s = fault::point("wal.checkpoint"); !s.is_ok()) return s;
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::error_code ec;
  for (std::uint64_t seq : list_segments()) {
    const std::string path = segment_path(seq);
    fs::remove(path, ec);
    if (ec) {
      return Status::unavailable("cannot remove WAL segment (" + path +
                                 "): " + ec.message());
    }
  }
  record_count_ = 0;
  if (m_checkpoints_ != nullptr) {  // null until the first successful open()
    m_checkpoints_->inc();
    m_records_->set(0.0);
  }
  return open_segment(current_seq_ + 1, /*truncate=*/true);
}

void Wal::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::size_t Wal::segment_count() const { return list_segments().size(); }

}  // namespace pmove::ingest
