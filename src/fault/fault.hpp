// Deterministic, seed-driven fault injection.
//
// Production code declares named injection points and queries them inline on
// the path it wants to be able to break:
//
//   if (Status s = fault::point("wal.append.fsync"); !s.is_ok()) return s;
//
// When nothing is armed the query is a single relaxed atomic load, so the
// points stay compiled into release builds at zero cost.  Points are armed
// programmatically (tests) or from a PMOVE_FAULT spec parsed at daemon
// startup:
//
//   PMOVE_FAULT="wal.append.fsync=fail:3;tsdb.write_batch=error_rate:0.05,seed:7"
//
// Modes:
//   fail:N         the next N triggers fail, then the point heals
//   fail_after:N   the first N triggers succeed, every later one fails
//   error_rate:P   each trigger fails with probability P — seeded and
//                  deterministic (`,seed:S` selects the stream)
//   latency:D      each trigger sleeps D (ns/us/ms/s suffix; default ms)
//                  and then succeeds
//   torn_write:B   fires once; cooperating call sites (the WAL) truncate
//                  their write to B payload bytes, simulating a crash
//                  mid-record
//
// Every point keeps trigger (queried while armed) and fire (actually
// failed/slept/tore) counters so tests can assert exactly what happened.
//
// Registered injection points in the tree (grep `fault::point` /
// `fault::fires` for ground truth):
//   wal.append          wal.append.fsync    wal.append.torn
//   wal.checkpoint      tsdb.write_batch    transport.offer
//   docdb.insert        fleet.route         fleet.scatter
//   fleet.gossip
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.hpp"
#include "util/status.hpp"

namespace pmove::fault {

enum class FaultMode {
  kFailTimes,
  kFailAfter,
  kErrorRate,
  kLatency,
  kTornWrite,
};

struct FaultSpec {
  FaultMode mode = FaultMode::kFailTimes;
  /// fail:N / fail_after:N counts; torn_write:B payload bytes kept.
  std::uint64_t count = 1;
  double rate = 0.0;           ///< error_rate probability
  std::uint64_t seed = 0;      ///< error_rate stream
  TimeNs latency_ns = 0;       ///< latency injection duration

  /// Canonical spec fragment ("fail:3", "error_rate:0.05,seed:7", ...);
  /// round-trips through parse_spec().
  [[nodiscard]] std::string to_string() const;
};

struct PointStats {
  std::string name;
  FaultSpec spec;
  std::uint64_t triggers = 0;  ///< queries while the point was armed
  std::uint64_t fires = 0;     ///< triggers that injected the fault
};

namespace detail {
extern std::atomic<int> g_armed_points;
}

/// True when at least one point is armed anywhere in the process.  This is
/// the entire hot-path cost of an unarmed injection point.
inline bool armed() {
  return detail::g_armed_points.load(std::memory_order_relaxed) > 0;
}

/// Queries the injection point.  ok() when unarmed or the fault does not
/// fire; an injected kUnavailable Status (carrying the point name) when it
/// does.  Latency mode sleeps, then returns ok().
Status point(std::string_view name);

/// Raw variant for call sites with custom failure behaviour (torn writes):
/// returns the armed spec when the point fires on this trigger.
std::optional<FaultSpec> fires(std::string_view name);

/// Arms `name` with `spec` (replacing any previous arming and resetting its
/// counters).
void arm(std::string_view name, FaultSpec spec);

/// Parses a PMOVE_FAULT-style spec ("point=mode:arg[,k:v];point2=...") and
/// arms every entry.  All-or-nothing: a malformed spec arms nothing and
/// returns a parse_error naming the offending fragment.
Status arm_from_spec(std::string_view spec);

/// Parses without arming (spec validation, round-trip tests).
Expected<std::vector<std::pair<std::string, FaultSpec>>> parse_spec(
    std::string_view spec);

void disarm(std::string_view name);
void disarm_all();

[[nodiscard]] std::uint64_t trigger_count(std::string_view name);
[[nodiscard]] std::uint64_t fire_count(std::string_view name);
[[nodiscard]] std::vector<PointStats> stats();

/// Serializes the armed points back into spec syntax (sorted by name);
/// parse_spec(to_spec()) reproduces the registry.
[[nodiscard]] std::string to_spec();

}  // namespace pmove::fault
