#include "fault/fault.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

#include "metrics/names.hpp"
#include "metrics/registry.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace pmove::fault {

namespace detail {
std::atomic<int> g_armed_points{0};
}

namespace {

struct PointState {
  FaultSpec spec;
  std::uint64_t triggers = 0;
  std::uint64_t fires = 0;
  std::uint64_t rng_state = 0;  ///< SplitMix64 stream for error_rate
  // pmove_fault self-telemetry, keyed by point name; handles acquired at
  // arm() so the hot unarmed path never touches the metrics registry.
  metrics::Counter* m_triggers = nullptr;
  metrics::Counter* m_fires = nullptr;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, PointState, std::less<>> points;
};

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: alive at exit
  return *instance;
}

/// Uniform [0,1) from a SplitMix64 step (keeps PointState trivially
/// movable — no mt19937 state per point).
double next_unit(std::uint64_t& state) {
  state = mix_seed(state, 0x5eedu);
  return static_cast<double>(state >> 11) /
         static_cast<double>(1ULL << 53);
}

/// Decides whether the point fires and updates counters.  Returns the spec
/// when it does; latency is injected by the caller-facing wrappers.
std::optional<FaultSpec> query(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.points.find(name);
  if (it == reg.points.end()) return std::nullopt;
  PointState& state = it->second;
  ++state.triggers;
  state.m_triggers->inc();
  bool fire = false;
  switch (state.spec.mode) {
    case FaultMode::kFailTimes:
      fire = state.fires < state.spec.count;
      break;
    case FaultMode::kFailAfter:
      fire = state.triggers > state.spec.count;
      break;
    case FaultMode::kErrorRate:
      fire = next_unit(state.rng_state) < state.spec.rate;
      break;
    case FaultMode::kLatency:
      fire = true;
      break;
    case FaultMode::kTornWrite:
      fire = state.fires < 1;  // a torn write is a crash: fires once
      break;
  }
  if (!fire) return std::nullopt;
  ++state.fires;
  state.m_fires->inc();
  return state.spec;
}

Expected<FaultSpec> parse_fragment(std::string_view fragment) {
  const std::vector<std::string> parts = strings::split(fragment, ',');
  if (parts.empty() || strings::trim(parts[0]).empty()) {
    return Status::parse_error("empty fault mode");
  }
  FaultSpec spec;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const std::string_view part = strings::trim(parts[i]);
    const std::size_t colon = part.find(':');
    const std::string_view key = strings::trim(part.substr(0, colon));
    const std::string_view arg =
        colon == std::string_view::npos ? "" : strings::trim(part.substr(colon + 1));
    if (i == 0) {
      if (key == "fail" || key == "fail_after" || key == "torn_write") {
        spec.mode = key == "fail"         ? FaultMode::kFailTimes
                    : key == "fail_after" ? FaultMode::kFailAfter
                                          : FaultMode::kTornWrite;
        if (arg.empty()) {
          spec.count = key == "torn_write" ? 0 : 1;
          continue;
        }
        auto count = strings::parse_int(arg);
        if (!count || *count < 0) {
          return Status::parse_error("bad count in '" +
                                     std::string(fragment) + "'");
        }
        spec.count = static_cast<std::uint64_t>(*count);
      } else if (key == "error_rate") {
        spec.mode = FaultMode::kErrorRate;
        auto rate = strings::parse_double(arg);
        if (!rate || *rate < 0.0 || *rate > 1.0) {
          return Status::parse_error("error_rate needs a probability in "
                                     "[0,1]: '" +
                                     std::string(fragment) + "'");
        }
        spec.rate = *rate;
      } else if (key == "latency") {
        spec.mode = FaultMode::kLatency;
        // Duration with unit suffix; bare numbers are milliseconds.
        std::string_view digits = arg;
        TimeNs scale = 1'000'000;
        for (const auto& [suffix, unit] :
             {std::pair<std::string_view, TimeNs>{"ns", 1},
              {"us", 1'000},
              {"ms", 1'000'000},
              {"s", kNsPerSec}}) {
          if (strings::ends_with(arg, suffix)) {
            digits = arg.substr(0, arg.size() - suffix.size());
            scale = unit;
            break;
          }
        }
        auto duration = strings::parse_double(digits);
        if (!duration || *duration < 0.0) {
          return Status::parse_error("bad latency in '" +
                                     std::string(fragment) + "'");
        }
        spec.latency_ns =
            static_cast<TimeNs>(*duration * static_cast<double>(scale));
      } else {
        return Status::parse_error("unknown fault mode '" + std::string(key) +
                                   "' in '" + std::string(fragment) + "'");
      }
    } else if (key == "seed") {
      auto seed = strings::parse_int(arg);
      if (!seed || *seed < 0) {
        return Status::parse_error("bad seed in '" + std::string(fragment) +
                                   "'");
      }
      spec.seed = static_cast<std::uint64_t>(*seed);
    } else {
      return Status::parse_error("unknown fault option '" + std::string(key) +
                                 "' in '" + std::string(fragment) + "'");
    }
  }
  return spec;
}

}  // namespace

std::string FaultSpec::to_string() const {
  switch (mode) {
    case FaultMode::kFailTimes:
      return "fail:" + std::to_string(count);
    case FaultMode::kFailAfter:
      return "fail_after:" + std::to_string(count);
    case FaultMode::kTornWrite:
      return "torn_write:" + std::to_string(count);
    case FaultMode::kErrorRate: {
      std::string out = "error_rate:" + strings::format_double(rate, 6);
      // Trim trailing zeros for readability ("0.050000" -> "0.05").
      while (out.size() > 1 && out.back() == '0') out.pop_back();
      if (out.back() == '.') out.push_back('0');
      if (seed != 0) out += ",seed:" + std::to_string(seed);
      return out;
    }
    case FaultMode::kLatency:
      return "latency:" + std::to_string(latency_ns) + "ns";
  }
  return "unknown";
}

Status point(std::string_view name) {
  if (!armed()) return Status::ok();
  const std::optional<FaultSpec> fired = query(name);
  if (!fired.has_value()) return Status::ok();
  if (fired->mode == FaultMode::kLatency) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(fired->latency_ns));
    return Status::ok();
  }
  return Status::unavailable("injected fault at '" + std::string(name) + "'");
}

std::optional<FaultSpec> fires(std::string_view name) {
  if (!armed()) return std::nullopt;
  return query(name);
}

void arm(std::string_view name, FaultSpec spec) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  PointState state;
  state.spec = spec;
  state.rng_state = mix_seed(spec.seed, 0xfa17u);
  metrics::Registry& metrics_reg = metrics::Registry::global();
  state.m_triggers =
      &metrics_reg.counter(metrics::kMeasurementFault, name, "triggers");
  state.m_fires =
      &metrics_reg.counter(metrics::kMeasurementFault, name, "fires");
  auto [it, inserted] = reg.points.insert_or_assign(std::string(name), state);
  (void)it;
  if (inserted) {
    detail::g_armed_points.fetch_add(1, std::memory_order_relaxed);
  }
}

Status arm_from_spec(std::string_view spec) {
  auto parsed = parse_spec(spec);
  if (!parsed) return parsed.status();
  for (auto& [name, fault_spec] : *parsed) arm(name, fault_spec);
  return Status::ok();
}

Expected<std::vector<std::pair<std::string, FaultSpec>>> parse_spec(
    std::string_view spec) {
  std::vector<std::pair<std::string, FaultSpec>> out;
  for (const std::string& entry : strings::split_trimmed(spec, ';')) {
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::parse_error("fault spec entry needs '=': '" + entry +
                                 "'");
    }
    const std::string name{strings::trim(std::string_view(entry).substr(0, eq))};
    if (name.empty()) {
      return Status::parse_error("fault spec entry has no point name: '" +
                                 entry + "'");
    }
    auto fault_spec =
        parse_fragment(strings::trim(std::string_view(entry).substr(eq + 1)));
    if (!fault_spec) return fault_spec.status();
    out.emplace_back(name, *fault_spec);
  }
  return out;
}

void disarm(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (reg.points.erase(std::string(name)) > 0) {
    detail::g_armed_points.fetch_sub(1, std::memory_order_relaxed);
  }
}

void disarm_all() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  detail::g_armed_points.fetch_sub(static_cast<int>(reg.points.size()),
                                   std::memory_order_relaxed);
  reg.points.clear();
}

std::uint64_t trigger_count(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.points.find(name);
  return it == reg.points.end() ? 0 : it->second.triggers;
}

std::uint64_t fire_count(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.points.find(name);
  return it == reg.points.end() ? 0 : it->second.fires;
}

std::vector<PointStats> stats() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<PointStats> out;
  out.reserve(reg.points.size());
  for (const auto& [name, state] : reg.points) {
    out.push_back({name, state.spec, state.triggers, state.fires});
  }
  return out;
}

std::string to_spec() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::string out;
  for (const auto& [name, state] : reg.points) {
    if (!out.empty()) out += ';';
    out += name;
    out += '=';
    out += state.spec.to_string();
  }
  return out;
}

}  // namespace pmove::fault
