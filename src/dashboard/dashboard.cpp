#include "dashboard/dashboard.hpp"

#include <fstream>
#include <sstream>

namespace pmove::dashboard {

json::Value Target::to_json() const {
  json::Object datasource;
  datasource.set("type", datasource_type);
  datasource.set("uid", datasource_uid);
  json::Object obj;
  obj.set("datasource", std::move(datasource));
  obj.set("measurement", measurement);
  obj.set("params", params);
  if (!tag.empty()) obj.set("tag", tag);
  return obj;
}

Expected<Target> Target::from_json(const json::Value& doc) {
  if (!doc.is_object()) return Status::parse_error("target must be object");
  Target target;
  if (const json::Value* ds = doc.find("datasource");
      ds != nullptr && ds->is_object()) {
    target.datasource_type =
        ds->find("type") ? ds->find("type")->string_or("influxdb")
                         : "influxdb";
    target.datasource_uid =
        ds->find("uid") ? ds->find("uid")->string_or("") : "";
  }
  target.measurement =
      doc.find("measurement") ? doc.find("measurement")->string_or("") : "";
  if (target.measurement.empty()) {
    return Status::parse_error("target missing measurement");
  }
  target.params = doc.find("params") ? doc.find("params")->string_or("") : "";
  target.tag = doc.find("tag") ? doc.find("tag")->string_or("") : "";
  return target;
}

query::Query Target::to_typed_query() const {
  query::QueryBuilder builder(measurement);
  if (params.empty()) {
    builder.select_all();
  } else {
    builder.select(params);
  }
  if (!tag.empty()) builder.where_tag("tag", tag);
  return std::move(builder).build();
}

std::string Target::to_query() const {
  std::string query = "SELECT ";
  query += params.empty() ? "*" : "\"" + params + "\"";
  query += " FROM \"" + measurement + "\"";
  if (!tag.empty()) query += " WHERE tag=\"" + tag + "\"";
  return query;
}

json::Value Panel::to_json() const {
  json::Object obj;
  obj.set("id", id);
  if (!title.empty()) obj.set("title", title);
  json::Array target_array;
  target_array.reserve(targets.size());
  for (const auto& target : targets) target_array.push_back(target.to_json());
  obj.set("targets", std::move(target_array));
  return obj;
}

Expected<Panel> Panel::from_json(const json::Value& doc) {
  if (!doc.is_object()) return Status::parse_error("panel must be object");
  Panel panel;
  panel.id = doc.find("id") ? static_cast<int>(doc.find("id")->int_or(0)) : 0;
  panel.title = doc.find("title") ? doc.find("title")->string_or("") : "";
  if (const json::Value* targets = doc.find("targets");
      targets != nullptr && targets->is_array()) {
    for (const auto& t : targets->as_array()) {
      auto target = Target::from_json(t);
      if (!target) return target.status();
      panel.targets.push_back(std::move(target.value()));
    }
  }
  return panel;
}

json::Value Dashboard::to_json() const {
  json::Object obj;
  obj.set("id", id);
  if (!title.empty()) obj.set("title", title);
  json::Array panel_array;
  panel_array.reserve(panels.size());
  for (const auto& panel : panels) panel_array.push_back(panel.to_json());
  obj.set("panels", std::move(panel_array));
  json::Object time;
  time.set("from", time_from);
  time.set("to", time_to);
  obj.set("time", std::move(time));
  return obj;
}

Expected<Dashboard> Dashboard::from_json(const json::Value& doc) {
  if (!doc.is_object()) {
    return Status::parse_error("dashboard must be object");
  }
  Dashboard dash;
  dash.id = doc.find("id") ? static_cast<int>(doc.find("id")->int_or(0)) : 0;
  dash.title = doc.find("title") ? doc.find("title")->string_or("") : "";
  if (const json::Value* panels = doc.find("panels");
      panels != nullptr && panels->is_array()) {
    for (const auto& p : panels->as_array()) {
      auto panel = Panel::from_json(p);
      if (!panel) return panel.status();
      dash.panels.push_back(std::move(panel.value()));
    }
  }
  if (const json::Value* time = doc.find("time");
      time != nullptr && time->is_object()) {
    dash.time_from =
        time->find("from") ? time->find("from")->string_or("now-5m")
                           : "now-5m";
    dash.time_to = time->find("to") ? time->find("to")->string_or("now")
                                    : "now";
  }
  return dash;
}

Status Dashboard::save_to_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::unavailable("cannot write " + path);
  out << to_json().dump_pretty() << "\n";
  return out.good() ? Status::ok()
                    : Status::unavailable("write failed: " + path);
}

Expected<Dashboard> Dashboard::load_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::not_found("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  auto doc = json::Value::parse(text.str());
  if (!doc) return doc.status();
  return from_json(*doc);
}

}  // namespace pmove::dashboard
