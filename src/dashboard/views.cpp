#include "dashboard/views.hpp"

#include <algorithm>
#include <cmath>

#include "metrics/names.hpp"
#include "query/plan.hpp"
#include "tsdb/db.hpp"
#include "util/strings.hpp"

namespace pmove::dashboard {

namespace {

/// Builds one target from a telemetry entry document.
Target target_from_telemetry(const json::Value& telemetry) {
  Target target;
  target.measurement =
      telemetry.find("DBName") ? telemetry.find("DBName")->string_or("") : "";
  target.params = telemetry.find("FieldName")
                      ? telemetry.find("FieldName")->string_or("")
                      : "";
  return target;
}

std::string telemetry_sampler(const json::Value& telemetry) {
  return telemetry.find("SamplerName")
             ? telemetry.find("SamplerName")->string_or("")
             : "";
}

}  // namespace

Expected<Dashboard> ViewBuilder::focus_view(std::string_view dtmi,
                                            bool extend_to_root) const {
  const topology::Component* component = kb_->component_for(dtmi);
  if (component == nullptr) {
    return Status::not_found("no component for DTMI: " + std::string(dtmi));
  }
  Dashboard dash;
  dash.id = 1;
  dash.title = "focus: " + component->name();
  int panel_id = 1;
  auto add_panels_for = [this, &dash, &panel_id](
                            const topology::Component& c) -> Status {
    auto id = kb_->dtmi_for(c);
    if (!id) return id.status();
    for (const auto& telemetry : kb_->telemetry_of(id.value())) {
      Panel panel;
      panel.id = panel_id++;
      panel.title = c.name() + ": " + telemetry_sampler(telemetry);
      panel.targets.push_back(target_from_telemetry(telemetry));
      dash.panels.push_back(std::move(panel));
    }
    return Status::ok();
  };
  if (Status s = add_panels_for(*component); !s.is_ok()) return s;
  if (extend_to_root) {
    for (const topology::Component* ancestor = component->parent();
         ancestor != nullptr; ancestor = ancestor->parent()) {
      if (Status s = add_panels_for(*ancestor); !s.is_ok()) return s;
    }
  }
  return dash;
}

Expected<Dashboard> ViewBuilder::subtree_view(std::string_view dtmi) const {
  const topology::Component* root = kb_->component_for(dtmi);
  if (root == nullptr) {
    return Status::not_found("no component for DTMI: " + std::string(dtmi));
  }
  Dashboard dash;
  dash.id = 1;
  dash.title = "subtree: " + root->name();
  int panel_id = 1;
  for (const topology::Component* component : root->subtree()) {
    auto id = kb_->dtmi_for(*component);
    if (!id) return id.status();
    auto telemetry = kb_->telemetry_of(id.value());
    if (telemetry.empty()) continue;
    Panel panel;
    panel.id = panel_id++;
    panel.title = component->path();
    for (const auto& entry : telemetry) {
      panel.targets.push_back(target_from_telemetry(entry));
    }
    dash.panels.push_back(std::move(panel));
  }
  return dash;
}

Expected<Dashboard> ViewBuilder::level_view(topology::ComponentKind kind,
                                            std::string_view metric) const {
  Dashboard dash;
  dash.id = 1;
  dash.title = "level: " + std::string(topology::to_string(kind));
  int panel_id = 1;
  for (const topology::Component* component : kb_->root().find_all(kind)) {
    auto id = kb_->dtmi_for(*component);
    if (!id) return id.status();
    for (const auto& telemetry : kb_->telemetry_of(id.value())) {
      if (!metric.empty() && telemetry_sampler(telemetry) != metric) {
        continue;
      }
      Panel panel;
      panel.id = panel_id++;
      panel.title = component->name() + ": " + telemetry_sampler(telemetry);
      panel.targets.push_back(target_from_telemetry(telemetry));
      dash.panels.push_back(std::move(panel));
      if (metric.empty()) break;  // first telemetry only
    }
  }
  if (dash.panels.empty()) {
    return Status::not_found("no telemetry for level view of " +
                             std::string(topology::to_string(kind)));
  }
  return dash;
}

Expected<Dashboard> ViewBuilder::internals_view() const {
  auto observation = kb_->find_observation(metrics::kSelfObservationTag);
  if (!observation) {
    return Status::not_found(
        "no self-telemetry observation in the KB (attach a target first)");
  }
  Dashboard dash;
  dash.id = 1;
  dash.title = "P-MoVE internals";
  int panel_id = 1;
  for (const kb::SampledMetric& metric : observation->metrics) {
    Panel panel;
    panel.id = panel_id++;
    panel.title = metric.db_name;
    for (const std::string& field : metric.fields) {
      Target target;
      target.measurement = metric.db_name;
      target.params = field;
      panel.targets.push_back(std::move(target));
    }
    dash.panels.push_back(std::move(panel));
  }
  return dash;
}

Expected<Dashboard> cross_system_level_view(
    const std::vector<const kb::KnowledgeBase*>& kbs,
    topology::ComponentKind kind, std::string_view metric) {
  Dashboard dash;
  dash.id = 1;
  dash.title = "level (cross-system): " +
               std::string(topology::to_string(kind)) + " / " +
               std::string(metric);
  int panel_id = 1;
  for (const kb::KnowledgeBase* knowledge_base : kbs) {
    ViewBuilder builder(knowledge_base);
    auto per_machine = builder.level_view(kind, metric);
    if (!per_machine) return per_machine.status();
    for (auto& panel : per_machine->panels) {
      panel.id = panel_id++;
      panel.title = knowledge_base->hostname() + "/" + panel.title;
      dash.panels.push_back(std::move(panel));
    }
  }
  return dash;
}

namespace {

std::string sparkline(const std::vector<double>& values, int width) {
  static const char kLevels[] = " .:-=+*#%@";
  if (values.empty()) return std::string("(no data)");
  double lo = values.front(), hi = values.front();
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = hi - lo;
  std::string out;
  const int n = static_cast<int>(values.size());
  for (int c = 0; c < width; ++c) {
    // Bucket-average the series into `width` columns.
    const int begin = static_cast<int>(static_cast<double>(c) * n / width);
    const int end = std::max(
        begin + 1, static_cast<int>(static_cast<double>(c + 1) * n / width));
    double sum = 0.0;
    int count = 0;
    for (int i = begin; i < end && i < n; ++i) {
      sum += values[static_cast<std::size_t>(i)];
      ++count;
    }
    if (count == 0) {
      out += ' ';
      continue;
    }
    const double v = sum / count;
    const int level =
        range <= 0.0 ? 5
                     : static_cast<int>((v - lo) / range * 9.0);
    out += kLevels[std::clamp(level, 0, 9)];
  }
  return out;
}

/// Per-row sum of the non-NaN value columns — the scalar each sparkline
/// column is built from.
std::vector<double> row_values(const Expected<tsdb::QueryResult>& result) {
  std::vector<double> values;
  if (!result) return values;
  for (const auto& row : result->rows) {
    double sum = 0.0;
    bool have = false;
    for (std::size_t i = 1; i < row.size(); ++i) {
      if (!std::isnan(row[i])) {
        sum += row[i];
        have = true;
      }
    }
    if (have) values.push_back(sum);
  }
  return values;
}

template <typename RunQuery>
std::string render_impl(const Dashboard& dashboard, int width,
                        RunQuery&& run_query) {
  std::string out = "== " +
                    (dashboard.title.empty() ? "dashboard" : dashboard.title) +
                    " ==\n";
  for (const auto& panel : dashboard.panels) {
    out += "[" + std::to_string(panel.id) + "] " + panel.title + "\n";
    for (const auto& target : panel.targets) {
      std::vector<double> values = row_values(run_query(target.to_typed_query()));
      out += "  " + target.measurement +
             (target.params.empty() ? "" : "[" + target.params + "]") + "\n";
      out += "  |" + sparkline(values, width) + "|\n";
    }
  }
  return out;
}

}  // namespace

std::string render_dashboard(const Dashboard& dashboard,
                             const tsdb::TimeSeriesDb& db, int width) {
  return render_impl(dashboard, width, [&db](const query::Query& q) {
    return query::run(db, q);
  });
}

std::string render_dashboard(const Dashboard& dashboard,
                             query::QueryEngine& engine, int width) {
  return render_impl(dashboard, width, [&engine](const query::Query& q) {
    return engine.run(q);
  });
}

}  // namespace pmove::dashboard
