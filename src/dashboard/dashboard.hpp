// Dashboards (paper, Section III-B).
//
// "In P-MoVE, each dashboard is only a simple JSON file."  The JSON schema
// mirrors the paper's Listing 1: a dashboard has an id, panels with targets
// (datasource + measurement + params/field), and a time range.  Dashboards
// can be serialized, edited, shared and re-loaded; the renderer executes a
// dashboard against the TSDB the way the Grafana plugin would.
#pragma once

#include <string>
#include <vector>

#include "json/value.hpp"
#include "query/query.hpp"
#include "util/status.hpp"

namespace pmove::dashboard {

struct Target {
  std::string datasource_type = "influxdb";
  std::string datasource_uid = "UUkm188l";
  std::string measurement;
  std::string params;  ///< field name, e.g. "_cpu0"
  std::string tag;     ///< optional observation tag filter

  [[nodiscard]] json::Value to_json() const;
  static Expected<Target> from_json(const json::Value& doc);

  /// The typed query this target executes (what the renderer runs).
  [[nodiscard]] query::Query to_typed_query() const;

  /// Same query as InfluxQL text, for display/export (Grafana panel JSON
  /// carries the raw query string).
  [[nodiscard]] std::string to_query() const;
};

struct Panel {
  int id = 0;
  std::string title;
  std::vector<Target> targets;

  [[nodiscard]] json::Value to_json() const;
  static Expected<Panel> from_json(const json::Value& doc);
};

struct Dashboard {
  int id = 0;
  std::string title;
  std::vector<Panel> panels;
  std::string time_from = "now-5m";
  std::string time_to = "now";

  [[nodiscard]] json::Value to_json() const;
  static Expected<Dashboard> from_json(const json::Value& doc);

  /// File round trip — "the corresponding JSON file can be shared by
  /// multiple users".
  Status save_to_file(const std::string& path) const;
  static Expected<Dashboard> load_from_file(const std::string& path);
};

}  // namespace pmove::dashboard
