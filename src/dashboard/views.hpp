// View builders: focus / subtree / level (paper, Section III-B).
//
// "Employing a tree-structured KB enables fully automated performance
// monitoring ... tailoring various views."  Each builder walks the KB tree
// and emits a Dashboard whose targets reference the telemetry entries the
// KB recorded for each component.
#pragma once

#include <string_view>
#include <vector>

#include "dashboard/dashboard.hpp"
#include "kb/kb.hpp"
#include "query/engine.hpp"
#include "topology/component.hpp"
#include "tsdb/db.hpp"
#include "util/status.hpp"

namespace pmove::dashboard {

class ViewBuilder {
 public:
  explicit ViewBuilder(const kb::KnowledgeBase* knowledge_base)
      : kb_(knowledge_base) {}

  /// Focus (component) view: every telemetry entry of one component, one
  /// panel per metric.  With `extend_to_root`, panels for each ancestor's
  /// telemetry are appended — "the path navigating from a component
  /// perspective to a more generalized system perspective".
  [[nodiscard]] Expected<Dashboard> focus_view(std::string_view dtmi,
                                               bool extend_to_root = false)
      const;

  /// Subtree ((sub)system) view: one panel per component from `dtmi` down
  /// to the leaves, each panel holding that component's telemetry targets.
  [[nodiscard]] Expected<Dashboard> subtree_view(std::string_view dtmi) const;

  /// Level (type) view: all instances of one component kind, one panel per
  /// instance, each showing `metric` (a SamplerName; empty = first
  /// telemetry).
  [[nodiscard]] Expected<Dashboard> level_view(
      topology::ComponentKind kind, std::string_view metric = "") const;

  /// "P-MoVE internals" view: the monitoring pipeline watching itself.
  /// Built from the "pmove-internals" ObservationInterface the daemon
  /// registers at attach time — one panel per pmove_* self-telemetry
  /// measurement (ingest, WAL, breakers, health, query cache, ...), fed by
  /// the MetricsExporter's registry snapshots.
  [[nodiscard]] Expected<Dashboard> internals_view() const;

 private:
  const kb::KnowledgeBase* kb_;
};

/// Cross-machine level view (paper: "the level-view dashboards for
/// different processes running SpMV ... on different servers"): one panel
/// per (machine, instance).
Expected<Dashboard> cross_system_level_view(
    const std::vector<const kb::KnowledgeBase*>& kbs,
    topology::ComponentKind kind, std::string_view metric);

/// Executes every target of every panel against `db` and renders ASCII
/// sparklines (the Grafana plugin's role).  Targets run as typed queries —
/// no per-refresh parsing.
std::string render_dashboard(const Dashboard& dashboard,
                             const tsdb::TimeSeriesDb& db, int width = 60);

/// Same rendering through a QueryEngine: repeated refreshes of an unchanged
/// dashboard hit the engine's result cache and downsample pushdowns instead
/// of rescanning the storage tier.
std::string render_dashboard(const Dashboard& dashboard,
                             query::QueryEngine& engine, int width = 60);

}  // namespace pmove::dashboard
