// PCP agent model.
//
// PCP ships metrics through a set of agents on the target (paper, Fig 6):
//   - pmcd        : manages the other agents and reports their readings
//   - pmdaperfevent: samples PMUs via the Linux perf interface
//   - pmdalinux   : software-sourced system state metrics
//   - pmdaproc    : per-process metrics (largest instance domain)
//
// Each agent has a constant resident-set size and a CPU cost proportional to
// the data points it handles per second — exactly the behaviour measured in
// the paper ("regardless of the reported metrics or sampling frequency, all
// agents maintain constant memory usage"; CPU scales linearly).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pmove::sampler {

enum class AgentKind { kPmcd, kPerfevent, kLinux, kProc };

std::string_view to_string(AgentKind kind);

struct AgentCostModel {
  AgentKind kind = AgentKind::kPmcd;
  double rss_bytes = 0.0;            ///< constant resident set
  double cpu_us_per_point = 0.0;     ///< CPU microseconds per data point
  double cpu_us_per_report = 0.0;    ///< fixed CPU per sampling round
  double wire_bytes_per_point = 0.0; ///< serialized size contribution
  double wire_bytes_per_report = 0.0;///< per-round protocol overhead
};

/// Cost model for one agent kind (values calibrated against Fig 6's
/// magnitudes: MBs of RSS, sub-percent CPU at 1 Hz).
const AgentCostModel& agent_cost_model(AgentKind kind);

/// All four agents in display order.
std::vector<AgentKind> all_agents();

/// The agent responsible for a PCP metric name ("perfevent.*" ->
/// perfevent, "proc.*" -> proc, everything else -> linux).
AgentKind agent_for_metric(std::string_view sampler_name);

}  // namespace pmove::sampler
