// High-frequency sampling session simulation (Table III).
//
// Drives a virtual-time sampling session: `metric_count` PMU metrics sampled
// at `frequency_hz` over `duration`, each report carrying one field per
// logical CPU of the target machine (the paper: "skx has 88 threads,
// therefore there are 88 data points in each report").  Reports flow through
// the TransportPipeline and land in the TSDB; the session accounts expected
// vs. inserted vs. zero points and the achieved throughput.
#pragma once

#include <string>
#include <vector>

#include "sampler/transport.hpp"
#include "topology/machine.hpp"
#include "tsdb/db.hpp"
#include "tsdb/sink.hpp"
#include "util/status.hpp"

namespace pmove::sampler {

struct SessionConfig {
  double frequency_hz = 2.0;
  int metric_count = 4;
  double duration_s = 10.0;
  /// Metric (measurement) names; generated when empty.
  std::vector<std::string> metrics;
  TransportModel transport;
  std::uint64_t seed = 7;
};

struct SessionStats {
  std::int64_t expected = 0;  ///< freq * duration * metrics * domain
  std::int64_t inserted = 0;  ///< points that reached the DB
  std::int64_t zeros = 0;     ///< inserted points carrying zero values
  [[nodiscard]] std::int64_t lost() const { return expected - inserted; }
  [[nodiscard]] double loss_pct() const {
    return expected == 0 ? 0.0
                         : 100.0 * static_cast<double>(lost()) /
                               static_cast<double>(expected);
  }
  /// %L+Z: fraction of expected points that are lost or zero.
  [[nodiscard]] double loss_plus_zero_pct() const {
    return expected == 0
               ? 0.0
               : 100.0 * static_cast<double>(lost() + zeros) /
                     static_cast<double>(expected);
  }
  /// Inserted data points per second.
  double throughput = 0.0;
  /// Actual (non-zero) data points per second.
  double actual_throughput = 0.0;
  /// Points delivered through the spill tier (transport kSpill mode).
  std::int64_t spilled = 0;
  /// Reports whose producer had to wait (transport kBlock mode).
  std::int64_t blocked = 0;
};

/// Runs the virtual-time session against `sink` (points are really inserted,
/// so downstream queries behave like the paper's host DB).  The sink can be
/// a TimeSeriesDb directly or an ingest::IngestEngine; each round's points
/// are written as one batch.  Pass nullptr to skip storage and only account.
SessionStats run_sampling_session(const topology::MachineSpec& machine,
                                  const SessionConfig& config,
                                  tsdb::PointSink* sink);

}  // namespace pmove::sampler
