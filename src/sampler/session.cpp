#include "sampler/session.hpp"

#include <cmath>

#include "kb/ids.hpp"
#include "util/rng.hpp"

namespace pmove::sampler {

namespace {

// Events "highly unlikely to report zero" (paper, Section V-A).
const char* kDefaultMetrics[] = {
    "UNHALTED_CORE_CYCLES", "INSTRUCTION_RETIRED",   "UOPS_DISPATCHED",
    "BRANCH_INSTRUCTIONS_RETIRED", "MEM_INST_RETIRED:ALL_LOADS",
    "MEM_INST_RETIRED:ALL_STORES",
};

}  // namespace

SessionStats run_sampling_session(const topology::MachineSpec& machine,
                                  const SessionConfig& config,
                                  tsdb::PointSink* sink) {
  SessionStats stats;
  const int domain = machine.total_threads();
  const int metric_count = config.metric_count;
  std::vector<std::string> metrics = config.metrics;
  for (int m = static_cast<int>(metrics.size()); m < metric_count; ++m) {
    metrics.emplace_back(
        kDefaultMetrics[m % (sizeof(kDefaultMetrics) /
                             sizeof(kDefaultMetrics[0]))] +
        std::string(m >= 6 ? "_" + std::to_string(m) : ""));
  }

  const TimeNs period = from_seconds(1.0 / config.frequency_hz);
  const TimeNs horizon = from_seconds(config.duration_s);
  const std::int64_t rounds = horizon / period;
  stats.expected = rounds * metric_count * domain;

  // All metrics of one round ship as a single report through a shared
  // pipeline (PCP fetch PDUs share the link and the DB connection), so the
  // per-round processing time grows with both metric count and domain size —
  // matching the paper's observation that loss correlates with domain size.
  TransportPipeline pipeline(config.transport, metric_count * domain,
                             mix_seed(config.seed, static_cast<std::uint64_t>(
                                                       metric_count) *
                                                       1000 +
                                                       domain));
  Rng value_rng(mix_seed(config.seed, 99));

  for (std::int64_t round = 0; round < rounds; ++round) {
    const TimeNs t = (round + 1) * period;
    const ReportFate fate = pipeline.offer(t);
    if (fate == ReportFate::kDropped) continue;
    const bool zero = fate == ReportFate::kDeliveredZero;
    stats.inserted += metric_count * domain;
    if (zero) stats.zeros += metric_count * domain;
    if (sink != nullptr) {
      // One batch per round: the whole report ships together, which is what
      // the ingest tier's write_batch fast path is built for.
      std::vector<tsdb::Point> batch;
      batch.reserve(metrics.size());
      for (const auto& metric : metrics) {
        tsdb::Point point;
        point.measurement = kb::hw_measurement(metric);
        point.tags["host"] = machine.hostname;
        point.time = t;
        for (int cpu = 0; cpu < domain; ++cpu) {
          point.fields["_cpu" + std::to_string(cpu)] =
              zero ? 0.0 : std::floor(value_rng.uniform(1e5, 1e7));
        }
        batch.push_back(std::move(point));
      }
      (void)sink->write_batch(std::move(batch));
    }
  }

  const TransportCounters& shipped = pipeline.counters();
  stats.blocked = static_cast<std::int64_t>(shipped.blocked);
  stats.spilled =
      static_cast<std::int64_t>(shipped.spilled) * metric_count * domain;

  stats.throughput =
      static_cast<double>(stats.inserted) / config.duration_s;
  stats.actual_throughput =
      static_cast<double>(stats.inserted - stats.zeros) / config.duration_s;
  return stats;
}

}  // namespace pmove::sampler
