// Metric shipment pipeline model.
//
// PCP "performs sampling instead of recording performance events over time
// ... There is no buffer or queue mechanism to keep data points until their
// insertion into the DB" (paper, Section V-A).  This class models that
// pipeline in virtual time: each sampling round produces one report whose
// end-to-end processing time is
//
//   serialize(points) + network(bytes / bandwidth) + db_insert(points)
//                     + jitter (+ occasional stall)
//
// A report fired while the pipeline is still busy with the previous one is
// DROPPED — the loss mechanism behind Table III.  Independently, the
// perfevent agent refreshes its counters on its own cadence; a report read
// before the next refresh carries ZERO deltas — the "batched zero values"
// the paper observes at high frequency.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/clock.hpp"
#include "util/rng.hpp"

namespace pmove::sampler {

/// What the shipping pipeline does with a report that arrives while it is
/// busy.  kDrop is the paper's PCP behaviour (Table III); the other two are
/// what the ingest tier provides: the producer waits for the pipeline
/// (kBlock) or the report is parked in the durable spill tier and drained
/// later (kSpill).  Both deliver every report — loss becomes latency.
enum class BackpressureMode {
  kDrop,
  kBlock,
  kSpill,
};

std::string_view to_string(BackpressureMode mode);

struct TransportModel {
  double network_mbit = 100.0;        ///< host<->target link (paper: 100 Mbit)
  double serialize_us_per_point = 18.0;
  double db_insert_us_per_point = 32.0;
  double base_latency_us = 4500.0;    ///< per-report fixed cost
  double jitter_rel_sigma = 0.35;     ///< lognormal-ish processing jitter
  double stall_per_second = 0.12;     ///< Poisson rate of transient stalls
  double stall_mean_us = 90'000.0;    ///< mean stall duration
  TimeNs warmup_ns = 350'000'000;     ///< connection warm-up: reports dropped
  double refresh_mean_us = 45'000.0;  ///< perfevent counter refresh cadence
  double refresh_sigma_us = 9'000.0;
  /// PCP has no buffering (capacity 0 — the paper's behaviour).  A positive
  /// capacity lets up to that many reports queue behind a busy pipeline
  /// instead of being dropped; used by the buffering ablation.
  int buffer_capacity = 0;
  /// Busy-pipeline policy.  kDrop reproduces Table III; kBlock / kSpill are
  /// the ingest tier's zero-loss modes (warm-up reports are buffered too).
  BackpressureMode mode = BackpressureMode::kDrop;
  std::uint64_t seed = 1234;
};

/// Outcome of offering one report to the pipeline.
enum class ReportFate {
  kDelivered,      ///< inserted with real values
  kDeliveredZero,  ///< inserted, but all points are zero (stale counters)
  kDropped,        ///< pipeline busy / warm-up — points lost
};

/// Per-pipeline accounting of how reports got through (or didn't).
struct TransportCounters {
  std::uint64_t delivered = 0;  ///< includes zero-valued deliveries
  std::uint64_t zeros = 0;
  std::uint64_t dropped = 0;
  std::uint64_t blocked = 0;  ///< deliveries that had to wait (kBlock)
  std::uint64_t spilled = 0;  ///< deliveries via the spill tier (kSpill)
  TimeNs blocked_ns = 0;      ///< total producer wait time under kBlock
};

class TransportPipeline {
 public:
  TransportPipeline(TransportModel model, int points_per_report,
                    std::uint64_t seed_salt = 0);

  /// Offers the report sampled at virtual time `t` (ns).  Points-per-report
  /// is fixed per session (#metrics x instance-domain size).
  ReportFate offer(TimeNs t);

  /// Processing time of one report, excluding jitter (for capacity
  /// planning / tests).
  [[nodiscard]] TimeNs nominal_processing_ns() const;

  /// Wire size of one report in bytes.
  [[nodiscard]] double report_bytes() const;

  [[nodiscard]] const TransportCounters& counters() const {
    return counters_;
  }

 private:
  TransportModel model_;
  int points_per_report_;
  Rng rng_;
  TimeNs busy_until_ = 0;
  TimeNs next_stall_ = 0;
  TimeNs last_refresh_ = 0;
  TimeNs next_refresh_gap_ = 0;
  TimeNs last_read_ = -1;
  TransportCounters counters_;

  [[nodiscard]] TimeNs draw_processing_ns();
  void schedule_stall(TimeNs after);
  [[nodiscard]] TimeNs draw_refresh_gap();
};

}  // namespace pmove::sampler
