#include "sampler/transport.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fault/fault.hpp"

namespace pmove::sampler {

std::string_view to_string(BackpressureMode mode) {
  switch (mode) {
    case BackpressureMode::kDrop:
      return "drop";
    case BackpressureMode::kBlock:
      return "block";
    case BackpressureMode::kSpill:
      return "spill";
  }
  return "unknown";
}

TransportPipeline::TransportPipeline(TransportModel model,
                                     int points_per_report,
                                     std::uint64_t seed_salt)
    : model_(model),
      points_per_report_(points_per_report),
      rng_(mix_seed(model.seed, seed_salt)) {
  schedule_stall(0);
  next_refresh_gap_ = draw_refresh_gap();
}

double TransportPipeline::report_bytes() const {
  // ~30 bytes of line protocol per point plus a protocol header.
  return 30.0 * points_per_report_ + 220.0;
}

TimeNs TransportPipeline::nominal_processing_ns() const {
  const double serialize_us =
      model_.serialize_us_per_point * points_per_report_;
  const double insert_us = model_.db_insert_us_per_point * points_per_report_;
  const double network_us =
      report_bytes() * 8.0 / (model_.network_mbit * 1e6) * 1e6;
  return from_seconds(
      (model_.base_latency_us + serialize_us + insert_us + network_us) / 1e6);
}

TimeNs TransportPipeline::draw_processing_ns() {
  const double nominal = static_cast<double>(nominal_processing_ns());
  // Multiplicative lognormal jitter centred on 1.
  const double jitter = std::exp(rng_.gaussian(0.0, model_.jitter_rel_sigma));
  return static_cast<TimeNs>(nominal * jitter);
}

void TransportPipeline::schedule_stall(TimeNs after) {
  if (model_.stall_per_second <= 0.0) {
    next_stall_ = std::numeric_limits<TimeNs>::max();
    return;
  }
  // Exponential inter-arrival.
  const double gap_s =
      -std::log(std::max(1e-12, rng_.uniform(0.0, 1.0))) /
      model_.stall_per_second;
  next_stall_ = after + from_seconds(gap_s);
}

TimeNs TransportPipeline::draw_refresh_gap() {
  // Mixture: mostly a jittered nominal cadence, with occasional long
  // hiccups (scheduler preemption on the target) that surface as zero
  // batches even at moderate frequencies.
  if (rng_.chance(0.03)) {
    return from_seconds(rng_.uniform(100e-3, 300e-3));
  }
  const double gap_us = std::max(
      5000.0, rng_.gaussian(model_.refresh_mean_us, model_.refresh_sigma_us));
  return from_seconds(gap_us / 1e6);
}

ReportFate TransportPipeline::offer(TimeNs t) {
  // Injected transport failure (a dropped connection, a lost datagram):
  // the report is gone before any backpressure policy can help it.
  if (!fault::point("transport.offer").is_ok()) {
    ++counters_.dropped;
    return ReportFate::kDropped;
  }
  // The perfevent counter refresh is an autonomous process on the target:
  // advance it to `t` regardless of what happens to this report.
  while (last_refresh_ + next_refresh_gap_ <= t) {
    last_refresh_ += next_refresh_gap_;
    next_refresh_gap_ = draw_refresh_gap();
  }
  const bool fresh = last_refresh_ > last_read_;
  last_read_ = t;

  // Connection warm-up: with no ingest tier early reports never make it;
  // the zero-loss modes buffer them until the connection is up.
  if (t < model_.warmup_ns) {
    if (model_.mode == BackpressureMode::kDrop) {
      ++counters_.dropped;
      return ReportFate::kDropped;
    }
    busy_until_ = std::max(busy_until_, model_.warmup_ns);
  }

  // Transient stalls extend the busy window.
  while (next_stall_ <= t) {
    const double stall_us =
        -std::log(std::max(1e-12, rng_.uniform(0.0, 1.0))) *
        model_.stall_mean_us;
    busy_until_ = std::max(busy_until_, next_stall_) +
                  from_seconds(stall_us / 1e6);
    schedule_stall(next_stall_);
  }

  if (t < busy_until_) {
    // The pipeline is busy.  Under kDrop the sample is lost unless the
    // ablation's bounded buffer has room (queue depth approximated by the
    // backlog divided by the nominal per-report processing time); the
    // zero-loss modes instead make the producer wait (kBlock) or park the
    // report in the WAL-backed spill tier for deferred draining (kSpill) —
    // either way it is processed once the pipeline frees up.
    switch (model_.mode) {
      case BackpressureMode::kDrop: {
        const TimeNs nominal = std::max<TimeNs>(1, nominal_processing_ns());
        const TimeNs backlog = busy_until_ - t;
        const int depth = static_cast<int>((backlog + nominal - 1) / nominal);
        if (depth > model_.buffer_capacity) {
          ++counters_.dropped;
          return ReportFate::kDropped;
        }
        break;
      }
      case BackpressureMode::kBlock:
        ++counters_.blocked;
        counters_.blocked_ns += busy_until_ - t;
        break;
      case BackpressureMode::kSpill:
        ++counters_.spilled;
        break;
    }
    busy_until_ += draw_processing_ns();
  } else {
    busy_until_ = t + draw_processing_ns();
  }

  // Counter staleness: the report is inserted, but carries zero deltas when
  // no refresh happened since the previous read.
  ++counters_.delivered;
  if (!fresh) ++counters_.zeros;
  return fresh ? ReportFate::kDelivered : ReportFate::kDeliveredZero;
}

}  // namespace pmove::sampler
