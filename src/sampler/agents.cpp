#include "sampler/agents.hpp"

#include "util/strings.hpp"

namespace pmove::sampler {

std::string_view to_string(AgentKind kind) {
  switch (kind) {
    case AgentKind::kPmcd: return "pmcd";
    case AgentKind::kPerfevent: return "pmdaperfevent";
    case AgentKind::kLinux: return "pmdalinux";
    case AgentKind::kProc: return "pmdaproc";
  }
  return "pmcd";
}

const AgentCostModel& agent_cost_model(AgentKind kind) {
  static const AgentCostModel kPmcd{
      AgentKind::kPmcd, 4.2e6, 0.6, 120.0, 4.0, 96.0};
  static const AgentCostModel kPerfevent{
      AgentKind::kPerfevent, 2.8e6, 1.4, 180.0, 24.0, 64.0};
  static const AgentCostModel kLinux{
      AgentKind::kLinux, 6.1e6, 0.8, 150.0, 22.0, 64.0};
  static const AgentCostModel kProc{
      AgentKind::kProc, 26.5e6, 1.1, 450.0, 26.0, 64.0};
  switch (kind) {
    case AgentKind::kPmcd: return kPmcd;
    case AgentKind::kPerfevent: return kPerfevent;
    case AgentKind::kLinux: return kLinux;
    case AgentKind::kProc: return kProc;
  }
  return kPmcd;
}

std::vector<AgentKind> all_agents() {
  return {AgentKind::kPmcd, AgentKind::kPerfevent, AgentKind::kLinux,
          AgentKind::kProc};
}

AgentKind agent_for_metric(std::string_view sampler_name) {
  if (strings::starts_with(sampler_name, "perfevent")) {
    return AgentKind::kPerfevent;
  }
  if (strings::starts_with(sampler_name, "proc.")) return AgentKind::kProc;
  return AgentKind::kLinux;
}

}  // namespace pmove::sampler
