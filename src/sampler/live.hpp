// Live sampler (Scenario B of Fig 3).
//
// A real background thread that wakes at the configured frequency, takes
// interval reads from a SimulatedPmu, and inserts one tagged point per event
// into the TSDB.  Because the thread really runs while an instrumented
// kernel executes (publishing to LiveCounters), the interference it causes
// is genuine — Fig 5's overhead measurement needs nothing synthetic on top.
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pmu/pmu.hpp"
#include "tsdb/sink.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace pmove::sampler {

struct LiveSamplerConfig {
  double frequency_hz = 10.0;
  std::vector<std::string> events;  ///< raw PMU event names
  std::vector<int> cpus;            ///< CPUs whose fields are recorded
  std::string tag;                  ///< observation UUID for WHERE tag=...
  std::string host;
};

class LiveSampler {
 public:
  /// The PMU must already be configured with (at least) `config.events`.
  /// `sink` may be a raw TimeSeriesDb or the ingest engine; each tick's
  /// points land as one batch on the sink's single virtual hot path.
  LiveSampler(const pmu::SimulatedPmu& pmu, tsdb::PointSink* sink,
              LiveSamplerConfig config);
  ~LiveSampler();

  LiveSampler(const LiveSampler&) = delete;
  LiveSampler& operator=(const LiveSampler&) = delete;

  /// Starts the sampling thread; `t=0` is the moment of this call.
  Status start();

  /// Takes a final sample, stops the thread and joins it.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(); }
  [[nodiscard]] int samples_taken() const { return samples_.load(); }
  /// Ticks missed because the previous round overran the period.
  [[nodiscard]] int ticks_missed() const { return missed_.load(); }

  /// Accumulated (sum of interval deltas) value per event, summed over the
  /// configured CPUs — what PCP would report as the run's total.
  [[nodiscard]] double accumulated(std::string_view event) const;

 private:
  void run();
  void sample_once(TimeNs t_prev, TimeNs t_now);

  const pmu::SimulatedPmu& pmu_;
  tsdb::PointSink* sink_;  ///< may be nullptr: accumulate only
  LiveSamplerConfig config_;
  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::atomic<int> samples_{0};
  std::atomic<int> missed_{0};
  TimeNs origin_ = 0;
  WallClock clock_;
  mutable std::mutex accum_mutex_;
  std::map<std::string, double, std::less<>> accumulated_;
  /// Last exact reading per "event#cpu" (sampler-thread only).
  std::map<std::string, double, std::less<>> prev_exact_;
};

}  // namespace pmove::sampler
