// Agent resource usage model (Fig 6).
//
// Predicts CPU, memory, network and disk usage of the PCP agents for a given
// metric mix and sampling frequency.  The qualitative behaviour the paper
// measures and this model reproduces:
//   - memory (RSS) constant regardless of metrics or frequency, pmdaproc
//     largest (bigger instance domain);
//   - CPU and network scale linearly with frequency;
//   - disk write rate grows with frequency (host-side DB);
//   - imperfect scaling at 4-8 samples/s from pipeline stalls (modelled as a
//     derating factor derived from the transport model).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sampler/agents.hpp"
#include "sampler/transport.hpp"

namespace pmove::sampler {

/// One metric group: how many metrics an agent serves and the size of each
/// metric's instance domain (fields per report).
struct MetricGroup {
  AgentKind agent = AgentKind::kLinux;
  int metric_count = 0;
  int instances_per_metric = 1;

  [[nodiscard]] int points() const {
    return metric_count * instances_per_metric;
  }
};

/// The paper's Fig 6 workload: 50 metrics comprising 15,937 data points on
/// skx (2 perfevent metrics over 88 CPUs, 20 pmdalinux metrics, per-process
/// metrics making up the rest).
std::vector<MetricGroup> fig6_metric_mix(int cpu_threads);

struct AgentUsage {
  AgentKind agent = AgentKind::kPmcd;
  double cpu_pct = 0.0;      ///< of one core
  double rss_bytes = 0.0;
  double net_bytes_per_s = 0.0;
};

struct ResourceUsage {
  std::vector<AgentUsage> agents;
  double total_cpu_pct = 0.0;
  double total_net_bytes_per_s = 0.0;
  double disk_bytes_per_s = 0.0;  ///< host-side DB writes

  [[nodiscard]] const AgentUsage* agent(AgentKind kind) const;
};

/// Predicts resource usage for sampling `groups` at `frequency_hz`.
ResourceUsage estimate_resources(const std::vector<MetricGroup>& groups,
                                 double frequency_hz,
                                 const TransportModel& transport = {});

}  // namespace pmove::sampler
