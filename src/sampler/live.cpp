#include "sampler/live.hpp"

#include <chrono>

#include "kb/ids.hpp"
#include "util/log.hpp"

namespace pmove::sampler {

LiveSampler::LiveSampler(const pmu::SimulatedPmu& pmu, tsdb::PointSink* sink,
                         LiveSamplerConfig config)
    : pmu_(pmu), sink_(sink), config_(std::move(config)) {}

LiveSampler::~LiveSampler() {
  if (running_.load()) stop();
}

Status LiveSampler::start() {
  if (running_.load()) {
    return Status::already_exists("sampler already running");
  }
  if (config_.frequency_hz <= 0.0) {
    return Status::invalid_argument("sampling frequency must be positive");
  }
  if (config_.events.empty()) {
    return Status::invalid_argument("no events configured");
  }
  stop_requested_.store(false);
  samples_.store(0);
  missed_.store(0);
  {
    std::lock_guard<std::mutex> lock(accum_mutex_);
    accumulated_.clear();
    prev_exact_.clear();
  }
  origin_ = clock_.now();
  running_.store(true);
  thread_ = std::thread([this] { run(); });
  return Status::ok();
}

void LiveSampler::stop() {
  stop_requested_.store(true);
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

double LiveSampler::accumulated(std::string_view event) const {
  std::lock_guard<std::mutex> lock(accum_mutex_);
  auto it = accumulated_.find(event);
  return it == accumulated_.end() ? 0.0 : it->second;
}

void LiveSampler::run() {
  const TimeNs period = from_seconds(1.0 / config_.frequency_hz);
  TimeNs t_prev = 0;
  TimeNs next_tick = period;
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    const TimeNs now = clock_.now() - origin_;
    if (now < next_tick) {
      const TimeNs wait = std::min<TimeNs>(next_tick - now, 2'000'000);
      std::this_thread::sleep_for(std::chrono::nanoseconds(wait));
      continue;
    }
    sample_once(t_prev, now);
    t_prev = now;
    // Skip ticks we overran rather than bursting to catch up (PCP has no
    // buffering; a late sample is a lost sample).
    TimeNs scheduled = next_tick + period;
    while (scheduled <= now) {
      scheduled += period;
      missed_.fetch_add(1, std::memory_order_relaxed);
    }
    next_tick = scheduled;
  }
  // Final read covers the tail of the run.
  sample_once(t_prev, clock_.now() - origin_);
  running_.store(false);
}

void LiveSampler::sample_once(TimeNs t_prev, TimeNs t_now) {
  samples_.fetch_add(1, std::memory_order_relaxed);
  const double interval_s = to_seconds(std::max<TimeNs>(1, t_now - t_prev));
  // One batch per tick: every event's point ships in a single write_batch
  // call, so the sink's lock and ordering work are amortized per tick.
  std::vector<tsdb::Point> batch;
  batch.reserve(config_.events.size());
  for (const auto& event : config_.events) {
    tsdb::Point point;
    point.measurement = kb::hw_measurement(event);
    if (!config_.tag.empty()) point.tags["tag"] = config_.tag;
    if (!config_.host.empty()) point.tags["host"] = config_.host;
    point.time = t_now;
    double event_total = 0.0;
    for (int cpu : config_.cpus) {
      // Difference successive exact readings ourselves (a live counter
      // source has no past), then let the PMU model perturb the interval.
      auto exact = pmu_.read_exact(event, cpu, t_now);
      if (!exact) {
        log_warn("live_sampler")
            << "read failed for " << event << ": "
            << exact.status().to_string();
        continue;
      }
      double& prev = prev_exact_[event + "#" + std::to_string(cpu)];
      const double exact_delta = exact.value() - prev;
      prev = exact.value();
      auto delta =
          pmu_.perturb_delta(event, cpu, t_now, exact_delta, interval_s);
      if (!delta) {
        log_warn("live_sampler")
            << "perturb_delta failed for " << event << ": "
            << delta.status().to_string();
        continue;
      }
      point.fields["_cpu" + std::to_string(cpu)] = delta.value();
      event_total += delta.value();
    }
    {
      std::lock_guard<std::mutex> lock(accum_mutex_);
      accumulated_[event] += event_total;
    }
    if (sink_ != nullptr && !point.fields.empty()) {
      batch.push_back(std::move(point));
    }
  }
  if (sink_ != nullptr && !batch.empty()) {
    (void)sink_->write_batch(std::move(batch));
  }
}

}  // namespace pmove::sampler
