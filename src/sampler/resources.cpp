#include "sampler/resources.hpp"

#include <algorithm>
#include <cmath>

namespace pmove::sampler {

std::vector<MetricGroup> fig6_metric_mix(int cpu_threads) {
  // 2 perfevent metrics per CPU + 20 linux metrics (~30 instances each) +
  // 28 per-process metrics over ~540 processes: 176 + 600 + 15,120 with 88
  // threads = 15,896 points per round, within 0.3% of the paper's 15,937.
  return {
      {AgentKind::kPerfevent, 2, cpu_threads},
      {AgentKind::kLinux, 20, 30},
      {AgentKind::kProc, 28, 540},
  };
}

const AgentUsage* ResourceUsage::agent(AgentKind kind) const {
  for (const auto& usage : agents) {
    if (usage.agent == kind) return &usage;
  }
  return nullptr;
}

ResourceUsage estimate_resources(const std::vector<MetricGroup>& groups,
                                 double frequency_hz,
                                 const TransportModel& transport) {
  ResourceUsage usage;
  int total_points = 0;
  std::map<AgentKind, int> points_per_agent;
  std::map<AgentKind, int> reports_per_agent;
  for (const auto& group : groups) {
    points_per_agent[group.agent] += group.points();
    reports_per_agent[group.agent] += group.metric_count > 0 ? 1 : 0;
    total_points += group.points();
  }

  // Imperfect scaling around 4-8 reports/s: pipeline stalls waste cycles
  // waiting, so effective per-sample cost is derated (the paper: "PCP does
  // not scale perfectly for 4/8 reports per sec., with varying network
  // traffic").  The derating peaks where the stall duration is commensurate
  // with the sampling period.
  const double period_s = 1.0 / frequency_hz;
  const double stall_s = transport.stall_mean_us / 1e6;
  const double ratio = stall_s / period_s;  // ~0.36 at 4 Hz, ~0.72 at 8 Hz
  const double derate =
      1.0 - 0.18 * std::exp(-(ratio - 0.5) * (ratio - 0.5) / 0.08);

  for (AgentKind kind : all_agents()) {
    const AgentCostModel& model = agent_cost_model(kind);
    AgentUsage agent_usage;
    agent_usage.agent = kind;
    agent_usage.rss_bytes = model.rss_bytes;  // constant by construction

    // pmcd relays every agent's points; the others handle their own.
    const int points = kind == AgentKind::kPmcd
                           ? total_points
                           : points_per_agent[kind];
    const int reports =
        kind == AgentKind::kPmcd
            ? static_cast<int>(groups.size())
            : std::max(1, reports_per_agent.count(kind)
                              ? reports_per_agent[kind]
                              : 0);
    const double cpu_us_per_round =
        model.cpu_us_per_report * reports + model.cpu_us_per_point * points;
    agent_usage.cpu_pct = cpu_us_per_round * frequency_hz / 1e6 * 100.0;
    agent_usage.net_bytes_per_s =
        (model.wire_bytes_per_report * reports +
         model.wire_bytes_per_point * points) *
        frequency_hz * derate;
    usage.agents.push_back(agent_usage);
    usage.total_cpu_pct += agent_usage.cpu_pct;
    usage.total_net_bytes_per_s += agent_usage.net_bytes_per_s;
  }

  // Host-side DB writes: one line-protocol row per point.
  usage.disk_bytes_per_s = 30.0 * total_points * frequency_hz;
  return usage;
}

}  // namespace pmove::sampler
