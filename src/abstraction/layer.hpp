// The Abstraction Layer (paper, Section IV-A).
//
// Maps generic event names to per-PMU hardware event formulas so callers can
// monitor events "in a CPU agnostic manner":
//
//   pmu_utils.get("skl", "TOTAL_MEMORY_OPERATIONS")
//     -> ["MEM_INST_RETIRED:ALL_LOADS", "+", "MEM_INST_RETIRED:ALL_STORES"]
//
// Mappings come from configuration files with the paper's grammar; built-in
// configs cover the four evaluation platforms.  validate() cross-checks a
// mapping against a PMU's event table so a bad config fails at registration
// time, not in the middle of a sampling session.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "abstraction/formula.hpp"
#include "pmu/events.hpp"
#include "util/status.hpp"

namespace pmove::abstraction {

/// The set of common generic events P-MoVE assumes every commodity CPU
/// supports (Section IV-A).
std::vector<std::string> common_generic_events();

class AbstractionLayer {
 public:
  /// Parses a config file (possibly containing several [pmu | alias...]
  /// sections) and registers all mappings.  Later sections override earlier
  /// ones for the same (pmu, generic) pair.
  Status load_config(std::string_view text);

  /// Reads and parses a config file from disk ("Upon registering the
  /// desired configuration files within P-MoVE...").
  Status load_config_file(const std::string& path);

  /// Writes the built-in configs into `directory` (intel.pmuconf,
  /// zen3.pmuconf) as the starting point for user customization.  Returns
  /// the number of files written.
  static Expected<int> write_builtin_configs(const std::string& directory);

  /// Registers one mapping programmatically.
  Status register_mapping(std::string_view pmu, std::string_view generic,
                          std::string_view formula_text);

  /// Adds an alias so get("skl", ...) and get("skx", ...) resolve the same
  /// mapping table.
  void add_alias(std::string_view alias, std::string_view pmu);

  /// The paper's pmu_utils.get(HW_PMU_NAME, COMMON_EVENT_NAME).
  [[nodiscard]] Expected<Formula> get(std::string_view pmu,
                                      std::string_view generic) const;

  /// True when the pair resolves to a usable (supported) formula.
  [[nodiscard]] bool supports(std::string_view pmu,
                              std::string_view generic) const;

  /// All generic events registered for a PMU, sorted.
  [[nodiscard]] std::vector<std::string> generic_events(
      std::string_view pmu) const;

  /// All registered PMU names (canonical, no aliases), sorted.
  [[nodiscard]] std::vector<std::string> pmus() const;

  /// Verifies every hardware event referenced by `pmu`'s mappings exists in
  /// `table`; returns the first offender otherwise.
  [[nodiscard]] Status validate(std::string_view pmu,
                                const pmu::EventTable& table) const;

  /// Layer pre-loaded with the built-in configs for skx / csl / icl / zen3.
  static AbstractionLayer with_builtin_configs();

 private:
  [[nodiscard]] std::string resolve_pmu(std::string_view pmu) const;

  std::map<std::string, std::map<std::string, Formula>, std::less<>>
      mappings_;
  std::map<std::string, std::string, std::less<>> aliases_;
};

/// Built-in config text (exposed for tests and for writing to disk as a
/// starting point for user customization).
std::string_view builtin_intel_config();
std::string_view builtin_zen3_config();

}  // namespace pmove::abstraction
