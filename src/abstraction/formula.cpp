#include "abstraction/formula.hpp"

#include <cctype>
#include <cstdlib>

#include "util/strings.hpp"

namespace pmove::abstraction {

namespace {

bool is_operator(std::string_view token) {
  return token == "+" || token == "-" || token == "*" || token == "/";
}

bool is_constant(std::string_view token) {
  if (token.empty()) return false;
  char* end = nullptr;
  std::string s(token);
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool is_event_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '.';
}

int precedence(std::string_view op) {
  return (op == "*" || op == "/") ? 2 : 1;
}

Expected<std::vector<std::string>> tokenize(std::string_view expr) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < expr.size()) {
    char c = expr[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '+' || c == '-' || c == '*' || c == '/' || c == '(' ||
        c == ')') {
      tokens.emplace_back(1, c);
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      while (i < expr.size() &&
             (std::isdigit(static_cast<unsigned char>(expr[i])) ||
              expr[i] == '.' || expr[i] == 'e' || expr[i] == 'E' ||
              ((expr[i] == '+' || expr[i] == '-') && i > start &&
               (expr[i - 1] == 'e' || expr[i - 1] == 'E')))) {
        ++i;
      }
      tokens.emplace_back(expr.substr(start, i - start));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < expr.size() && is_event_char(expr[i])) ++i;
      tokens.emplace_back(expr.substr(start, i - start));
      continue;
    }
    return Status::parse_error(std::string("unexpected character '") + c +
                               "' in formula");
  }
  return tokens;
}

}  // namespace

Expected<Formula> Formula::parse(std::string_view expr) {
  Formula formula;
  std::string_view trimmed = strings::trim(expr);
  if (strings::to_lower(trimmed) == "unsupported" ||
      strings::to_lower(trimmed) == "not supported") {
    formula.unsupported_ = true;
    formula.tokens_ = {"unsupported"};
    return formula;
  }
  auto tokens = tokenize(trimmed);
  if (!tokens) return tokens.status();
  if (tokens->empty()) return Status::parse_error("empty formula");

  // Shunting-yard to RPN, validating structure as we go.
  std::vector<std::string> output;
  std::vector<std::string> ops;
  bool expect_operand = true;
  for (const auto& token : *tokens) {
    if (token == "(") {
      if (!expect_operand) {
        return Status::parse_error("misplaced '(' in formula");
      }
      ops.push_back(token);
    } else if (token == ")") {
      if (expect_operand) {
        return Status::parse_error("misplaced ')' in formula");
      }
      while (!ops.empty() && ops.back() != "(") {
        output.push_back(ops.back());
        ops.pop_back();
      }
      if (ops.empty()) return Status::parse_error("unbalanced ')'");
      ops.pop_back();
    } else if (is_operator(token)) {
      if (expect_operand) {
        return Status::parse_error("operator '" + token +
                                   "' missing left operand");
      }
      while (!ops.empty() && ops.back() != "(" &&
             precedence(ops.back()) >= precedence(token)) {
        output.push_back(ops.back());
        ops.pop_back();
      }
      ops.push_back(token);
      expect_operand = true;
      continue;
    } else {
      if (!expect_operand) {
        return Status::parse_error("two operands without operator near '" +
                                   token + "'");
      }
      output.push_back(token);
    }
    expect_operand = (token == "(");
  }
  if (expect_operand) return Status::parse_error("formula ends mid-term");
  while (!ops.empty()) {
    if (ops.back() == "(") return Status::parse_error("unbalanced '('");
    output.push_back(ops.back());
    ops.pop_back();
  }

  formula.tokens_ = std::move(*tokens);
  formula.rpn_ = std::move(output);
  return formula;
}

std::vector<std::string> Formula::hw_events() const {
  std::vector<std::string> events;
  for (const auto& token : rpn_) {
    if (is_operator(token) || is_constant(token)) continue;
    if (std::find(events.begin(), events.end(), token) == events.end()) {
      events.push_back(token);
    }
  }
  return events;
}

Expected<double> Formula::evaluate(
    const std::function<Expected<double>(std::string_view)>& resolve) const {
  if (unsupported_) {
    return Status::unsupported("generic event unsupported on this PMU");
  }
  std::vector<double> stack;
  for (const auto& token : rpn_) {
    if (is_operator(token)) {
      if (stack.size() < 2) {
        return Status::internal("formula stack underflow");
      }
      const double b = stack.back();
      stack.pop_back();
      const double a = stack.back();
      stack.pop_back();
      double r = 0.0;
      if (token == "+") r = a + b;
      else if (token == "-") r = a - b;
      else if (token == "*") r = a * b;
      else r = (b == 0.0) ? 0.0 : a / b;
      stack.push_back(r);
    } else if (is_constant(token)) {
      stack.push_back(std::strtod(token.c_str(), nullptr));
    } else {
      auto value = resolve(token);
      if (!value) return value.status();
      stack.push_back(value.value());
    }
  }
  if (stack.size() != 1) return Status::internal("formula stack imbalance");
  return stack.back();
}

std::string Formula::to_string() const {
  return strings::join(tokens_, " ");
}

}  // namespace pmove::abstraction
