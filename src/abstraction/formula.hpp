// Event formulas.
//
// The abstraction layer maps a generic event to an arithmetic expression
// over hardware PMU events and constants (paper, Section IV-A):
//
//   [pmu_name | alias]
//   <generic_event>:<hardware_event_1> [op]
//   [op] : ((+|-|*|/) (<hw_event> | <const>)) [op]
//
// A Formula is the parsed expression: it exposes the infix token list (the
// paper's pmu_utils.get(...) returns exactly this list) and evaluates given
// a resolver for hardware-event values.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace pmove::abstraction {

class Formula {
 public:
  /// Parses "EVT_A + EVT_B * 8" style expressions.  Supports + - * /,
  /// parentheses, floating-point constants and event names that may contain
  /// ':' and '.'.  The special expression "unsupported" yields a formula
  /// whose unsupported() is true.
  static Expected<Formula> parse(std::string_view expr);

  /// Infix tokens, e.g. ["MEM_INST_RETIRED:ALL_LOADS", "+",
  /// "MEM_INST_RETIRED:ALL_STORES"].
  [[nodiscard]] const std::vector<std::string>& tokens() const {
    return tokens_;
  }

  /// Distinct hardware event names referenced by the formula, in first-use
  /// order (what the sampler must program the PMU with).
  [[nodiscard]] std::vector<std::string> hw_events() const;

  /// Evaluates the formula; `resolve` supplies the value of each hardware
  /// event.  Division by zero yields 0 (counters read at t=0 are all zero —
  /// a ratio formula must not blow up the sampler).
  [[nodiscard]] Expected<double> evaluate(
      const std::function<Expected<double>(std::string_view)>& resolve) const;

  /// True when the generic event is marked unavailable on this PMU
  /// (Table I: "Not Supported").
  [[nodiscard]] bool unsupported() const { return unsupported_; }

  /// Reconstructed source text, tokens joined by spaces.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> tokens_;  ///< infix form
  std::vector<std::string> rpn_;     ///< postfix form for evaluation
  bool unsupported_ = false;
};

}  // namespace pmove::abstraction
