#include "abstraction/layer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace pmove::abstraction {

std::vector<std::string> common_generic_events() {
  return {
      "UNHALTED_CYCLES",
      "INSTRUCTIONS_RETIRED",
      "TOTAL_MEMORY_OPERATIONS",
      "TOTAL_MEMORY_BYTES",
      "FLOPS_SCALAR_DP",
      "FLOPS_ALL_DP",
      "FLOPS_AVX512_DP",
      "L1_CACHE_DATA_MISS",
      "L2_CACHE_MISS",
      "L3_CACHE_MISS",
      "L3_CACHE_HIT",
      "RAPL_ENERGY_PKG",
      "RAPL_ENERGY_DRAM",
      "BRANCHES_RETIRED",
      "BRANCH_MISSES_RETIRED",
  };
}

Status AbstractionLayer::load_config(std::string_view text) {
  std::string current_pmu;
  std::vector<std::string> current_aliases;
  int line_no = 0;
  for (const auto& raw_line : strings::split(text, '\n')) {
    ++line_no;
    std::string_view line = strings::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        return Status::parse_error("line " + std::to_string(line_no) +
                                   ": unterminated section header");
      }
      auto names =
          strings::split_trimmed(line.substr(1, line.size() - 2), '|');
      if (names.empty()) {
        return Status::parse_error("line " + std::to_string(line_no) +
                                   ": empty section header");
      }
      current_pmu = names.front();
      for (std::size_t i = 1; i < names.size(); ++i) {
        add_alias(names[i], current_pmu);
      }
      continue;
    }
    if (current_pmu.empty()) {
      return Status::parse_error("line " + std::to_string(line_no) +
                                 ": mapping before any [pmu] section");
    }
    // generic names contain no ':', hardware events do — split on the first.
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::parse_error("line " + std::to_string(line_no) +
                                 ": expected '<generic>:<formula>'");
    }
    std::string_view generic = strings::trim(line.substr(0, colon));
    std::string_view formula_text = strings::trim(line.substr(colon + 1));
    if (generic.empty()) {
      return Status::parse_error("line " + std::to_string(line_no) +
                                 ": empty generic event name");
    }
    Status status = register_mapping(current_pmu, generic, formula_text);
    if (!status.is_ok()) {
      return Status::parse_error("line " + std::to_string(line_no) + ": " +
                                 status.message());
    }
  }
  return Status::ok();
}

Status AbstractionLayer::load_config_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::not_found("cannot open config file: " + path);
  }
  std::ostringstream text;
  text << file.rdbuf();
  Status status = load_config(text.str());
  if (!status.is_ok()) {
    return Status::parse_error(path + ": " + status.message());
  }
  return Status::ok();
}

Expected<int> AbstractionLayer::write_builtin_configs(
    const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::unavailable("cannot create directory " + directory +
                               ": " + ec.message());
  }
  int written = 0;
  const std::pair<const char*, std::string_view> configs[] = {
      {"intel.pmuconf", builtin_intel_config()},
      {"zen3.pmuconf", builtin_zen3_config()},
  };
  for (const auto& [name, text] : configs) {
    const std::string path = directory + "/" + name;
    std::ofstream file(path);
    if (!file) return Status::unavailable("cannot write " + path);
    file << text;
    ++written;
  }
  return written;
}

Status AbstractionLayer::register_mapping(std::string_view pmu,
                                          std::string_view generic,
                                          std::string_view formula_text) {
  auto formula = Formula::parse(formula_text);
  if (!formula) return formula.status();
  mappings_[resolve_pmu(pmu)][std::string(generic)] =
      std::move(formula.value());
  return Status::ok();
}

void AbstractionLayer::add_alias(std::string_view alias,
                                 std::string_view pmu) {
  aliases_[std::string(alias)] = std::string(pmu);
}

std::string AbstractionLayer::resolve_pmu(std::string_view pmu) const {
  auto it = aliases_.find(pmu);
  return it == aliases_.end() ? std::string(pmu) : it->second;
}

Expected<Formula> AbstractionLayer::get(std::string_view pmu,
                                        std::string_view generic) const {
  auto table_it = mappings_.find(resolve_pmu(pmu));
  if (table_it == mappings_.end()) {
    return Status::not_found("no mappings registered for PMU: " +
                             std::string(pmu));
  }
  auto it = table_it->second.find(std::string(generic));
  if (it == table_it->second.end()) {
    return Status::not_found("no mapping for generic event '" +
                             std::string(generic) + "' on PMU '" +
                             std::string(pmu) + "'");
  }
  return it->second;
}

bool AbstractionLayer::supports(std::string_view pmu,
                                std::string_view generic) const {
  auto formula = get(pmu, generic);
  return formula.has_value() && !formula->unsupported();
}

std::vector<std::string> AbstractionLayer::generic_events(
    std::string_view pmu) const {
  std::vector<std::string> out;
  auto it = mappings_.find(resolve_pmu(pmu));
  if (it == mappings_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [generic, formula] : it->second) out.push_back(generic);
  return out;
}

std::vector<std::string> AbstractionLayer::pmus() const {
  std::vector<std::string> out;
  out.reserve(mappings_.size());
  for (const auto& [pmu, table] : mappings_) out.push_back(pmu);
  return out;
}

Status AbstractionLayer::validate(std::string_view pmu,
                                  const pmu::EventTable& table) const {
  auto it = mappings_.find(resolve_pmu(pmu));
  if (it == mappings_.end()) {
    return Status::not_found("no mappings registered for PMU: " +
                             std::string(pmu));
  }
  for (const auto& [generic, formula] : it->second) {
    if (formula.unsupported()) continue;
    for (const auto& event : formula.hw_events()) {
      if (!table.supports(event)) {
        return Status::invalid_argument(
            "mapping '" + generic + "' on PMU '" + std::string(pmu) +
            "' references unknown hardware event '" + event + "'");
      }
    }
  }
  return Status::ok();
}

// The Intel FP_ARITH events count vector *instructions*; the byte/FLOP
// conversions below are the "specialized expressions" Section IV-B.2
// describes.  Memory bytes assume double-precision data (8 bytes per scalar
// element), matching the paper's Fig 4 volume formula.
std::string_view builtin_intel_config() {
  return R"(# Built-in generic-event mappings for Intel Skylake-X / Cascade Lake / Ice Lake.
[skx | skl | skylake_x | csl | cascade_lake | icl | ice_lake | intel]
UNHALTED_CYCLES: UNHALTED_CORE_CYCLES
INSTRUCTIONS_RETIRED: INSTRUCTION_RETIRED
TOTAL_MEMORY_OPERATIONS: MEM_INST_RETIRED:ALL_LOADS + MEM_INST_RETIRED:ALL_STORES
TOTAL_MEMORY_BYTES: (MEM_INST_RETIRED:ALL_LOADS + MEM_INST_RETIRED:ALL_STORES) * 8
FLOPS_SCALAR_DP: FP_ARITH:SCALAR_DOUBLE
FLOPS_ALL_DP: FP_ARITH:SCALAR_DOUBLE + FP_ARITH:128B_PACKED_DOUBLE * 2 + FP_ARITH:256B_PACKED_DOUBLE * 4 + FP_ARITH:512B_PACKED_DOUBLE * 8
FLOPS_AVX512_DP: FP_ARITH:512B_PACKED_DOUBLE * 8
L1_CACHE_DATA_MISS: L1D:REPLACEMENT
L2_CACHE_MISS: L2_RQSTS:MISS
L3_CACHE_MISS: LONGEST_LAT_CACHE:MISS
L3_CACHE_HIT: unsupported
RAPL_ENERGY_PKG: RAPL_ENERGY_PKG
RAPL_ENERGY_DRAM: RAPL_ENERGY_DRAM
BRANCHES_RETIRED: BRANCH_INSTRUCTIONS_RETIRED
BRANCH_MISSES_RETIRED: MISPREDICTED_BRANCH_RETIRED
)";
}

std::string_view builtin_zen3_config() {
  return R"(# Built-in generic-event mappings for AMD Zen3.
[zen3 | amd64_fam19h_zen3 | amd]
UNHALTED_CYCLES: CYCLES_NOT_IN_HALT
INSTRUCTIONS_RETIRED: RETIRED_INSTRUCTIONS
TOTAL_MEMORY_OPERATIONS: LS_DISPATCH:STORE_DISPATCH + LS_DISPATCH:LD_DISPATCH
TOTAL_MEMORY_BYTES: (LS_DISPATCH:STORE_DISPATCH + LS_DISPATCH:LD_DISPATCH) * 8
FLOPS_SCALAR_DP: RETIRED_SSE_AVX_FLOPS:ANY
FLOPS_ALL_DP: RETIRED_SSE_AVX_FLOPS:ANY
FLOPS_AVX512_DP: unsupported
L1_CACHE_DATA_MISS: L1_DATA_CACHE_MISS
L2_CACHE_MISS: L2_CACHE_MISS
L3_CACHE_MISS: LONGEST_LAT_CACHE:MISS
L3_CACHE_HIT: LONGEST_LAT_CACHE:RETIRED
RAPL_ENERGY_PKG: RAPL_ENERGY_PKG
RAPL_ENERGY_DRAM: RAPL_ENERGY_DRAM
BRANCHES_RETIRED: RETIRED_BRANCH_INSTRUCTIONS
BRANCH_MISSES_RETIRED: RETIRED_BRANCH_INSTRUCTIONS_MISPREDICTED
)";
}

AbstractionLayer AbstractionLayer::with_builtin_configs() {
  AbstractionLayer layer;
  // Built-in configs are well-formed by construction; a failure here is a
  // programming error surfaced in tests.
  Status status = layer.load_config(builtin_intel_config());
  if (status.is_ok()) status = layer.load_config(builtin_zen3_config());
  (void)status;
  return layer;
}

}  // namespace pmove::abstraction
