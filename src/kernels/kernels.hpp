// Instrumented compute kernels (the likwid-bench role in the paper).
//
// Six kernels — sum, stream, triad, peakflops, ddot, daxpy — execute real
// floating-point loops and publish exact per-chunk operation counts to a
// LiveCounters bank while they run.  Because the op counts are analytic
// (likwid-bench "executes a pre-determined, fixed number of instruction
// streams and can report ground truth"), the accuracy experiment (Fig 4)
// can compare PMU-sampled totals against exact truth, and the overhead
// experiment (Fig 5) can time the same kernel with and without a live
// sampler attached.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "topology/machine.hpp"
#include "util/status.hpp"
#include "workload/activity.hpp"
#include "workload/counter_source.hpp"

namespace pmove::kernels {

enum class KernelKind { kSum, kStream, kTriad, kPeakflops, kDdot, kDaxpy };

std::string_view to_string(KernelKind kind);
Expected<KernelKind> kernel_from_name(std::string_view name);
std::vector<KernelKind> all_kernels();

struct KernelSpec {
  KernelKind kind = KernelKind::kTriad;
  std::size_t n = 1u << 20;  ///< vector length (doubles)
  int iterations = 50;       ///< sweeps over the vectors
  int chunks = 64;           ///< progress-publication granularity
  int cpu = 0;               ///< logical CPU the counts are attributed to
};

/// Exact per-run operation counts plus the measured wall time.
struct KernelRun {
  workload::QuantitySet totals;  ///< analytic ground truth
  double seconds = 0.0;          ///< measured
  double checksum = 0.0;         ///< defeats dead-code elimination

  [[nodiscard]] double gflops() const {
    return seconds > 0.0 ? totals.total_flops() / seconds / 1e9 : 0.0;
  }
};

/// Analytic per-element costs of one kernel iteration (ground truth basis).
struct KernelCosts {
  double flops_per_elem = 0.0;
  double loads_per_elem = 0.0;
  double stores_per_elem = 0.0;
  /// Arithmetic intensity flops / (8 bytes x (loads+stores)).
  [[nodiscard]] double theoretical_ai() const {
    const double bytes = 8.0 * (loads_per_elem + stores_per_elem);
    return bytes > 0.0 ? flops_per_elem / bytes : 0.0;
  }
};
KernelCosts kernel_costs(KernelKind kind);

/// Runs the kernel, bumping `live` (when non-null) once per chunk so a
/// concurrent sampler observes progress.  The energy quantities are charged
/// using `machine`'s power model; cycles use its base clock.
KernelRun run_kernel(const KernelSpec& spec,
                     const topology::MachineSpec& machine,
                     workload::LiveCounters* live = nullptr);

/// Converts a finished run into a one-phase ActivityTrace starting at 0.
workload::ActivityTrace trace_from_run(const KernelRun& run,
                                       const KernelSpec& spec,
                                       std::string name);

// ---- benchmark campaigns recorded via BenchmarkInterface ----

/// STREAM (McCalpin): copy/scale/add/triad bandwidths in GB/s.
struct StreamResult {
  double copy_gbs = 0.0;
  double scale_gbs = 0.0;
  double add_gbs = 0.0;
  double triad_gbs = 0.0;
};
StreamResult run_stream(std::size_t n = 1u << 22, int repetitions = 5);

/// HPCG-lite: conjugate gradient on a 2-D five-point Poisson stencil.
struct HpcgResult {
  int iterations = 0;
  double final_residual = 0.0;
  double gflops = 0.0;
  double seconds = 0.0;
};
Expected<HpcgResult> run_hpcg_lite(int grid = 128, int max_iterations = 50,
                                   double tolerance = 1e-8);

}  // namespace pmove::kernels
