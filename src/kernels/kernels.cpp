#include "kernels/kernels.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

namespace pmove::kernels {

using workload::LiveCounters;
using workload::Quantity;
using workload::QuantitySet;

namespace {

/// Prevents the optimizer from discarding a computed value.
inline void do_not_optimize(double& value) {
  asm volatile("" : "+x"(value));
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Power/energy model constants (per-core active costs; calibrated so that
/// scalar-heavy codes draw noticeably more power per useful FLOP than
/// vector codes, as the paper's Fig 7 discussion describes).
constexpr double kJoulesPerScalarFlop = 1.1e-9;
constexpr double kJoulesPerVectorFlop = 0.35e-9;
constexpr double kJoulesPerByte = 0.25e-10;
constexpr double kStaticWattsPerCore = 6.0;

}  // namespace

std::string_view to_string(KernelKind kind) {
  switch (kind) {
    case KernelKind::kSum: return "sum";
    case KernelKind::kStream: return "stream";
    case KernelKind::kTriad: return "triad";
    case KernelKind::kPeakflops: return "peakflops";
    case KernelKind::kDdot: return "ddot";
    case KernelKind::kDaxpy: return "daxpy";
  }
  return "unknown";
}

Expected<KernelKind> kernel_from_name(std::string_view name) {
  for (KernelKind kind : all_kernels()) {
    if (to_string(kind) == name) return kind;
  }
  return Status::not_found("unknown kernel: " + std::string(name));
}

std::vector<KernelKind> all_kernels() {
  return {KernelKind::kSum,       KernelKind::kStream, KernelKind::kTriad,
          KernelKind::kPeakflops, KernelKind::kDdot,   KernelKind::kDaxpy};
}

KernelCosts kernel_costs(KernelKind kind) {
  switch (kind) {
    case KernelKind::kSum: return {1.0, 1.0, 0.0};
    case KernelKind::kStream: return {2.0, 2.0, 1.0};
    case KernelKind::kTriad: return {2.0, 3.0, 1.0};
    // peakflops: register-resident FMA chain, 16 FLOPs per "element", no
    // streaming memory traffic (AI is bounded by the one-time load, the
    // conventional value is 2 as in the paper's Fig 9 discussion).
    case KernelKind::kPeakflops: return {16.0, 1.0, 0.0};
    case KernelKind::kDdot: return {2.0, 2.0, 0.0};
    case KernelKind::kDaxpy: return {2.0, 2.0, 1.0};
  }
  return {};
}

namespace {

/// Executes one sweep over [begin, end); returns a value that must be
/// consumed.  Plain scalar loops — the ground truth op counts below assume
/// exactly these operations.
double sweep(KernelKind kind, std::size_t begin, std::size_t end,
             std::vector<double>& a, std::vector<double>& b,
             std::vector<double>& c, std::vector<double>& d, double scalar) {
  double acc = 0.0;
  switch (kind) {
    case KernelKind::kSum:
      for (std::size_t i = begin; i < end; ++i) acc += a[i];
      break;
    case KernelKind::kStream:
      for (std::size_t i = begin; i < end; ++i) a[i] = b[i] + scalar * c[i];
      acc = a[begin];
      break;
    case KernelKind::kTriad:
      for (std::size_t i = begin; i < end; ++i) a[i] = b[i] + c[i] * d[i];
      acc = a[begin];
      break;
    case KernelKind::kPeakflops: {
      // 8 independent FMA chains to keep the FPU busy; 16 FLOPs per step.
      double r0 = 1.0, r1 = 1.1, r2 = 1.2, r3 = 1.3;
      double r4 = 1.4, r5 = 1.5, r6 = 1.6, r7 = 1.7;
      const double x = scalar, y = 0.999999;
      for (std::size_t i = begin; i < end; ++i) {
        r0 = r0 * x + y;
        r1 = r1 * x + y;
        r2 = r2 * x + y;
        r3 = r3 * x + y;
        r4 = r4 * x + y;
        r5 = r5 * x + y;
        r6 = r6 * x + y;
        r7 = r7 * x + y;
      }
      acc = r0 + r1 + r2 + r3 + r4 + r5 + r6 + r7;
      break;
    }
    case KernelKind::kDdot:
      for (std::size_t i = begin; i < end; ++i) acc += a[i] * b[i];
      break;
    case KernelKind::kDaxpy:
      for (std::size_t i = begin; i < end; ++i) b[i] = b[i] + scalar * a[i];
      acc = b[begin];
      break;
  }
  do_not_optimize(acc);
  return acc;
}

int vectors_touched(KernelKind kind) {
  switch (kind) {
    case KernelKind::kSum: return 1;
    case KernelKind::kStream: return 3;
    case KernelKind::kTriad: return 4;
    case KernelKind::kPeakflops: return 0;
    case KernelKind::kDdot: return 2;
    case KernelKind::kDaxpy: return 2;
  }
  return 0;
}

/// Exact per-chunk ground truth, charged to `totals` and optionally `live`.
void charge_chunk(const KernelSpec& spec,
                  const topology::MachineSpec& machine, std::size_t elems,
                  double chunk_seconds, QuantitySet* totals,
                  LiveCounters* live) {
  const KernelCosts costs = kernel_costs(spec.kind);
  const double flops = costs.flops_per_elem * static_cast<double>(elems);
  const double loads = costs.loads_per_elem * static_cast<double>(elems);
  const double stores = costs.stores_per_elem * static_cast<double>(elems);
  // Loop bookkeeping: ~1 increment + 1 compare + 1 branch per element.
  const double branches = static_cast<double>(elems);
  const double instructions = flops + loads + stores + 3.0 * branches;
  const double cycles = chunk_seconds * machine.base_ghz * 1e9;

  // Streaming miss model: each byte streamed past a level it does not fit
  // in costs one line fill per 64 bytes at that level.
  const double streamed_bytes = (loads + stores) * 8.0;
  const double working_set =
      8.0 * static_cast<double>(spec.n) * vectors_touched(spec.kind);
  double l1_miss = 0.0, l2_miss = 0.0, l3_miss = 0.0;
  for (const auto& level : machine.cache_levels) {
    const bool fits = working_set <= static_cast<double>(level.size_bytes);
    if (fits) continue;
    if (level.name == "L1") l1_miss = streamed_bytes / 64.0;
    if (level.name == "L2") l2_miss = streamed_bytes / 64.0;
    if (level.name == "L3") l3_miss = streamed_bytes / 64.0;
  }

  const double energy = flops * kJoulesPerScalarFlop +
                        streamed_bytes * kJoulesPerByte +
                        kStaticWattsPerCore * chunk_seconds;

  auto charge = [&](Quantity q, double v) {
    totals->add(q, v);
    if (live != nullptr) live->add(q, spec.cpu, v);
  };
  charge(Quantity::kScalarFlops, flops);
  charge(Quantity::kLoads, loads);
  charge(Quantity::kStores, stores);
  charge(Quantity::kBranches, branches);
  charge(Quantity::kBranchMisses, branches * 0.002);
  charge(Quantity::kInstructions, instructions);
  charge(Quantity::kUops, instructions * 1.25);
  charge(Quantity::kCycles, cycles);
  charge(Quantity::kL1Miss, l1_miss);
  charge(Quantity::kL2Miss, l2_miss);
  charge(Quantity::kL3Miss, l3_miss);
  charge(Quantity::kL3Access, l2_miss);
  charge(Quantity::kEnergyPkgJoules, energy);
  charge(Quantity::kEnergyDramJoules, l3_miss * 64.0 * 4.0e-10);
}

}  // namespace

KernelRun run_kernel(const KernelSpec& spec,
                     const topology::MachineSpec& machine,
                     LiveCounters* live) {
  KernelRun run;
  const std::size_t n = std::max<std::size_t>(spec.n, 1);
  const int touched = std::max(1, vectors_touched(spec.kind));
  std::vector<double> a(touched >= 1 ? n : 1, 1.0);
  std::vector<double> b(touched >= 2 ? n : 1, 2.0);
  std::vector<double> c(touched >= 3 ? n : 1, 3.0);
  std::vector<double> d(touched >= 4 ? n : 1, 4.0);
  const double scalar = 1.0000001;

  const int chunks = std::max(1, spec.chunks);
  const std::size_t chunk_elems = (n + chunks - 1) / chunks;

  const double t_start = now_seconds();
  double checksum = 0.0;
  for (int iter = 0; iter < spec.iterations; ++iter) {
    for (int chunk = 0; chunk < chunks; ++chunk) {
      const std::size_t begin = static_cast<std::size_t>(chunk) * chunk_elems;
      if (begin >= n) break;
      const std::size_t end = std::min(n, begin + chunk_elems);
      const double t0 = now_seconds();
      checksum += sweep(spec.kind, begin, end, a, b, c, d, scalar);
      const double t1 = now_seconds();
      charge_chunk(spec, machine, end - begin, t1 - t0, &run.totals, live);
    }
  }
  run.seconds = now_seconds() - t_start;
  run.checksum = checksum;
  return run;
}

workload::ActivityTrace trace_from_run(const KernelRun& run,
                                       const KernelSpec& spec,
                                       std::string name) {
  workload::TraceBuilder builder;
  builder.add_phase(std::move(name), from_seconds(run.seconds), {spec.cpu},
                    run.totals);
  return std::move(builder).build();
}

StreamResult run_stream(std::size_t n, int repetitions) {
  std::vector<double> a(n, 1.0), b(n, 2.0), c(n, 0.5);
  const double scalar = 3.0;
  StreamResult result;
  auto best_time = [&](auto&& body, int arrays) {
    double best = 1e30;
    for (int r = 0; r < repetitions; ++r) {
      const double t0 = now_seconds();
      body();
      double guard = c[0] + a[0];
      do_not_optimize(guard);
      best = std::min(best, now_seconds() - t0);
    }
    return 8.0 * static_cast<double>(n) * arrays / best / 1e9;
  };
  result.copy_gbs = best_time(
      [&] {
        for (std::size_t i = 0; i < n; ++i) c[i] = a[i];
      },
      2);
  result.scale_gbs = best_time(
      [&] {
        for (std::size_t i = 0; i < n; ++i) b[i] = scalar * c[i];
      },
      2);
  result.add_gbs = best_time(
      [&] {
        for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + b[i];
      },
      3);
  result.triad_gbs = best_time(
      [&] {
        for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + scalar * c[i];
      },
      3);
  return result;
}

Expected<HpcgResult> run_hpcg_lite(int grid, int max_iterations,
                                   double tolerance) {
  if (grid < 3) return Status::invalid_argument("grid must be >= 3");
  const int n = grid * grid;
  // 5-point Poisson: A x = b with b = 1, x0 = 0. Matrix applied matrix-free.
  auto apply = [grid, n](const std::vector<double>& x,
                         std::vector<double>& y) {
    for (int row = 0; row < n; ++row) {
      const int i = row / grid, j = row % grid;
      double v = 4.0 * x[row];
      if (i > 0) v -= x[row - grid];
      if (i < grid - 1) v -= x[row + grid];
      if (j > 0) v -= x[row - 1];
      if (j < grid - 1) v -= x[row + 1];
      y[row] = v;
    }
  };
  std::vector<double> x(n, 0.0), r(n, 1.0), p(n, 1.0), ap(n, 0.0);
  double rr = static_cast<double>(n);
  const double rr0 = rr;
  HpcgResult result;
  const double t0 = now_seconds();
  double flops = 0.0;
  int iter = 0;
  for (; iter < max_iterations && rr > tolerance * tolerance * rr0; ++iter) {
    apply(p, ap);
    double pap = 0.0;
    for (int k = 0; k < n; ++k) pap += p[k] * ap[k];
    if (pap == 0.0) break;
    const double alpha = rr / pap;
    double rr_new = 0.0;
    for (int k = 0; k < n; ++k) {
      x[k] += alpha * p[k];
      r[k] -= alpha * ap[k];
      rr_new += r[k] * r[k];
    }
    const double beta = rr_new / rr;
    for (int k = 0; k < n; ++k) p[k] = r[k] + beta * p[k];
    rr = rr_new;
    // apply: ~9n flops; dots/updates: ~12n flops.
    flops += 21.0 * n;
  }
  result.seconds = now_seconds() - t0;
  result.iterations = iter;
  result.final_residual = std::sqrt(rr / rr0);
  result.gflops = result.seconds > 0.0 ? flops / result.seconds / 1e9 : 0.0;
  return result;
}

}  // namespace pmove::kernels
