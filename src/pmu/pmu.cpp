#include "pmu/pmu.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace pmove::pmu {

int CounterSchedule::group_of(std::string_view event) const {
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (std::find(groups[i].begin(), groups[i].end(), event) !=
        groups[i].end()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Expected<CounterSchedule> schedule_events(
    const EventTable& table, const std::vector<std::string>& events,
    bool smt_active) {
  CounterSchedule schedule;
  const int slots = smt_active
                        ? table.hardware().programmable_counters
                        : table.hardware().programmable_counters_smt_off;
  std::vector<std::string> programmable;
  for (const auto& name : events) {
    auto def = table.lookup(name);
    if (!def) return def.status();
    if (def->fixed_counter) {
      schedule.fixed.push_back(name);
    } else {
      programmable.push_back(name);
    }
  }
  for (std::size_t i = 0; i < programmable.size();
       i += static_cast<std::size_t>(slots)) {
    std::vector<std::string> group(
        programmable.begin() + static_cast<std::ptrdiff_t>(i),
        programmable.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(i + static_cast<std::size_t>(slots),
                         programmable.size())));
    schedule.groups.push_back(std::move(group));
  }
  if (schedule.groups.empty()) schedule.groups.emplace_back();
  return schedule;
}

SimulatedPmu::SimulatedPmu(const topology::MachineSpec& machine,
                           const workload::CounterSource* source,
                           PmuNoiseModel noise)
    : machine_(machine),
      source_(source),
      noise_(noise),
      table_(&event_table(machine.uarch)) {}

Status SimulatedPmu::configure(const std::vector<std::string>& events,
                               bool smt_active) {
  auto schedule = schedule_events(*table_, events, smt_active);
  if (!schedule) return schedule.status();
  schedule_ = std::move(schedule.value());
  configured_ = true;
  return Status::ok();
}

int SimulatedPmu::package_of(int cpu) const {
  const int cores = machine_.total_cores();
  if (cores <= 0) return 0;
  const int core = cpu % cores;
  return core / std::max(1, machine_.cores_per_socket);
}

Expected<double> SimulatedPmu::read_exact(std::string_view event, int cpu,
                                          TimeNs t) const {
  auto def = table_->lookup(event);
  if (!def) return def.status();
  double count = 0.0;
  if (def->scope == EventScope::kPackage) {
    // Sum the quantity over every CPU in the package.
    const int pkg = package_of(cpu);
    if (source_ != nullptr) {
      for (int c = 0; c < machine_.total_threads(); ++c) {
        if (package_of(c) != pkg) continue;
        for (const auto& term : def->semantics) {
          count += term.multiplier *
                   source_->cumulative(term.quantity, c, t);
        }
      }
    }
    // RAPL integrates idle power too.
    const bool is_energy =
        std::any_of(def->semantics.begin(), def->semantics.end(),
                    [](const SemanticTerm& term) {
                      return term.quantity ==
                                 workload::Quantity::kEnergyPkgJoules ||
                             term.quantity ==
                                 workload::Quantity::kEnergyDramJoules;
                    });
    if (is_energy) {
      count += noise_.idle_watts_per_package * to_seconds(t);
    }
    return count;
  }
  if (source_ == nullptr) return 0.0;
  for (const auto& term : def->semantics) {
    count += term.multiplier * source_->cumulative(term.quantity, cpu, t);
  }
  return count;
}

double SimulatedPmu::noise_factor(std::string_view event, int cpu,
                                  TimeNs t) const {
  std::uint64_t salt;
  if (noise_.deterministic) {
    // Hash-derived noise: the same (event, cpu, t) read always returns the
    // same value, so repeated queries are consistent and tests reproducible.
    salt = std::hash<std::string_view>{}(event);
    salt = mix_seed(salt, static_cast<std::uint64_t>(cpu) * 0x1000193 +
                              static_cast<std::uint64_t>(t));
  } else {
    salt = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
  }
  Rng rng(mix_seed(noise_.seed, salt));
  double sigma = noise_.relative_sigma;
  const int group = schedule_.group_of(event);
  if (group >= 0 && schedule_.multiplexed()) {
    sigma += noise_.multiplex_extra_sigma *
             static_cast<double>(schedule_.group_count() - 1);
  }
  return rng.gaussian(1.0, sigma);
}

Expected<double> SimulatedPmu::read(std::string_view event, int cpu,
                                    TimeNs t) const {
  if (!configured_) {
    return Status::unavailable("PMU not configured; call configure() first");
  }
  auto def = table_->lookup(event);
  if (!def) return def.status();
  if (!def->fixed_counter && schedule_.group_of(event) < 0) {
    return Status::invalid_argument("event not in configured set: " +
                                    std::string(event));
  }
  auto exact = read_exact(event, cpu, t);
  if (!exact) return exact.status();
  double value = exact.value() * noise_factor(event, cpu, t);
  // Reading the PMU executes instructions that the PMU itself counts: a
  // small, cumulative overcount bias for instruction-like events.
  const bool instruction_like = std::any_of(
      def->semantics.begin(), def->semantics.end(),
      [](const SemanticTerm& term) {
        return term.quantity == workload::Quantity::kInstructions ||
               term.quantity == workload::Quantity::kUops ||
               term.quantity == workload::Quantity::kCycles;
      });
  if (instruction_like) value += noise_.read_bias_events;
  return std::max(0.0, value);
}

Expected<double> SimulatedPmu::read_delta(std::string_view event, int cpu,
                                          TimeNs t0, TimeNs t1) const {
  auto exact0 = read_exact(event, cpu, t0);
  if (!exact0) return exact0.status();
  auto exact1 = read_exact(event, cpu, t1);
  if (!exact1) return exact1.status();
  const double interval_s = to_seconds(std::max<TimeNs>(1, t1 - t0));
  return perturb_delta(event, cpu, t1, exact1.value() - exact0.value(),
                       interval_s);
}

Expected<double> SimulatedPmu::perturb_delta(std::string_view event, int cpu,
                                             TimeNs t1, double exact_delta,
                                             double interval_s) const {
  if (!configured_) {
    return Status::unavailable("PMU not configured; call configure() first");
  }
  auto def = table_->lookup(event);
  if (!def) return def.status();
  if (!def->fixed_counter && schedule_.group_of(event) < 0) {
    return Status::invalid_argument("event not in configured set: " +
                                    std::string(event));
  }
  // Per-read timing jitter mis-attributes rate x dt events to this
  // interval; it neither cancels nor telescopes across reads, which is why
  // error accumulated over a run grows with sampling frequency.
  const double rate =
      interval_s > 0.0 ? exact_delta / interval_s : 0.0;
  double delta = exact_delta * noise_factor(event, cpu, t1);
  {
    std::uint64_t salt = std::hash<std::string_view>{}(event);
    salt = mix_seed(salt, 0x9d7f ^ (static_cast<std::uint64_t>(cpu) << 32) ^
                              static_cast<std::uint64_t>(t1));
    Rng rng(mix_seed(noise_.seed + 1, salt));
    delta += rate * rng.gaussian(0.0, noise_.read_jitter_sigma_ns) / 1e9;
  }
  const bool instruction_like = std::any_of(
      def->semantics.begin(), def->semantics.end(),
      [](const SemanticTerm& term) {
        return term.quantity == workload::Quantity::kInstructions ||
               term.quantity == workload::Quantity::kUops ||
               term.quantity == workload::Quantity::kCycles;
      });
  if (instruction_like) delta += noise_.read_bias_events;
  return std::max(0.0, delta);
}

}  // namespace pmove::pmu
