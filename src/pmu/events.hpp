// PMU event definitions per microarchitecture.
//
// Plays the role of libpfm4 in the paper: a registry that "recognizes
// model-specific registers (and events) of virtually every x86 processor".
// Each event is defined by its semantics — a linear combination of
// ground-truth workload quantities — so that the simulated PMU can derive a
// count for any event from an ActivityTrace.  The vendor differences the
// paper's Table I highlights (same/similar/different/exclusive names for the
// same generic event, flop-counting vs instruction-counting events, AMD's
// missing L3-hit event on Intel and vice versa) are encoded here.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "topology/machine.hpp"
#include "util/status.hpp"
#include "workload/activity.hpp"

namespace pmove::pmu {

/// Granularity at which an event is counted.
enum class EventScope { kThread, kCore, kPackage };
std::string_view to_string(EventScope scope);

/// One term of an event's semantic: `multiplier` x workload quantity.
struct SemanticTerm {
  workload::Quantity quantity;
  double multiplier = 1.0;
};

struct EventDef {
  std::string name;         ///< canonical PMU name, e.g. "MEM_INST_RETIRED:ALL_LOADS"
  std::string description;
  EventScope scope = EventScope::kThread;
  /// count(event) = sum_i multiplier_i * quantity_i
  std::vector<SemanticTerm> semantics;
  /// Fixed-counter events (cycles/instructions on Intel) don't occupy a
  /// programmable slot.
  bool fixed_counter = false;
};

/// Number of counters the microarchitecture exposes (paper, Section IV-A:
/// Intel has 4 programmable counters per core, 8 when SMT is off; AMD has
/// 2; Intel additionally has 3 fixed counters).
struct PmuHardwareInfo {
  int programmable_counters = 4;
  int programmable_counters_smt_off = 8;
  int fixed_counters = 3;
  std::string pmu_name;  ///< libpfm4-style PMU identifier, e.g. "skl"
};

/// Event registry for one microarchitecture.
class EventTable {
 public:
  EventTable(PmuHardwareInfo hw, std::vector<EventDef> events);

  [[nodiscard]] const PmuHardwareInfo& hardware() const { return hw_; }

  [[nodiscard]] bool supports(std::string_view event) const;
  [[nodiscard]] Expected<EventDef> lookup(std::string_view event) const;

  /// All event names, sorted.
  [[nodiscard]] std::vector<std::string> event_names() const;

  [[nodiscard]] std::size_t size() const { return events_.size(); }

 private:
  PmuHardwareInfo hw_;
  std::map<std::string, EventDef, std::less<>> events_;
};

/// Registry entry point: the event table for a microarchitecture.
/// Skylake-X / Cascade Lake / Ice Lake share the Intel core events (with
/// per-uarch PMU names); Zen3 uses the AMD table.
const EventTable& event_table(topology::Microarch uarch);

/// libpfm4-style short PMU name for a microarchitecture ("skx", "icl",
/// "csl", "zen3", "generic").
std::string_view pmu_short_name(topology::Microarch uarch);

}  // namespace pmove::pmu
