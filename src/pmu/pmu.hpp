// Simulated performance-monitoring unit.
//
// Models the pieces of a real PMU that the paper's evaluation depends on:
//  - a limited number of programmable counter slots per core (Intel 4 with
//    SMT / 8 without, AMD 2), with round-robin *multiplexing* when more
//    events are requested than slots — multiplexed counts are extrapolated
//    estimates and carry extra variance;
//  - per-read noise and a small measurement-overhead bias (PMUs over- and
//    under-count; see Weaver et al. [28] cited by the paper);
//  - package-scope events (RAPL energy) that integrate idle power on top of
//    the workload's active energy.
//
// Counts are derived from an ActivityTrace — the exact ground truth — so
// accuracy experiments can compare "what the PMU reported" against "what the
// workload actually did" (Fig 4).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "pmu/events.hpp"
#include "topology/machine.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "workload/activity.hpp"
#include "workload/counter_source.hpp"

namespace pmove::pmu {

/// Tunables for the PMU imperfection model.  Defaults are calibrated to the
/// error magnitudes in the paper's Fig 4 (fractions of a percent).
struct PmuNoiseModel {
  double relative_sigma = 4e-4;   ///< per-read multiplicative noise
  double read_bias_events = 40.0; ///< counted overhead per read (instructions-like events)
  double multiplex_extra_sigma = 2e-3;  ///< extra noise per extra group
  double idle_watts_per_package = 18.0; ///< baseline RAPL power
  /// Timing uncertainty of one read (ns): the fetch is timestamped on the
  /// host after crossing the network, so a delta read mis-attributes
  /// rate x jitter events to the interval.  This per-sample additive error
  /// is what makes accumulated error grow with sampling frequency (Fig 4).
  double read_jitter_sigma_ns = 400'000.0;
  bool deterministic = true;  ///< derive noise from (event,cpu,t) hash
  std::uint64_t seed = 42;
};

/// Result of scheduling requested events onto counter slots.
struct CounterSchedule {
  /// groups[i] = event names counted simultaneously in time slice i.
  std::vector<std::vector<std::string>> groups;
  /// Events on fixed counters (always counted, no slot used).
  std::vector<std::string> fixed;

  [[nodiscard]] int group_count() const {
    return static_cast<int>(groups.size());
  }
  /// True when more than one group exists (counts are extrapolated).
  [[nodiscard]] bool multiplexed() const { return groups.size() > 1; }
  /// Index of the group containing `event`, or -1 for fixed/absent.
  [[nodiscard]] int group_of(std::string_view event) const;
};

/// Packs events into counter slots; fixed-counter events ride for free.
/// `smt_active` selects the reduced slot count on Intel.
Expected<CounterSchedule> schedule_events(
    const EventTable& table, const std::vector<std::string>& events,
    bool smt_active = true);

/// A configured, readable PMU for one machine running one workload trace.
class SimulatedPmu {
 public:
  SimulatedPmu(const topology::MachineSpec& machine,
               const workload::CounterSource* source,
               PmuNoiseModel noise = {});

  /// Programs the PMU with the given raw event names.  More events than
  /// slots triggers multiplexing (allowed; quality degrades), unknown events
  /// fail.
  Status configure(const std::vector<std::string>& events,
                   bool smt_active = true);

  [[nodiscard]] const CounterSchedule& schedule() const { return schedule_; }
  [[nodiscard]] const EventTable& table() const { return *table_; }

  /// Cumulative count of `event` on logical CPU `cpu` at time `t` as the
  /// hardware would report it (ground truth + noise + multiplexing
  /// extrapolation).  Package-scope events ignore `cpu`'s thread and use its
  /// package.  `t` is relative to the trace's time origin.
  Expected<double> read(std::string_view event, int cpu, TimeNs t) const;

  /// Interval read, the way PCP's perfevent agent consumes counters: the
  /// event delta over [t0, t1] plus per-read imperfections (timing jitter x
  /// event rate, measurement-overhead bias, multiplexing noise).  Summing
  /// deltas over a run accumulates per-sample error — the mechanism behind
  /// the paper's frequency-dependent accuracy results.
  Expected<double> read_delta(std::string_view event, int cpu, TimeNs t0,
                              TimeNs t1) const;

  /// Applies the per-read imperfection model to an externally computed
  /// exact interval delta (used by live samplers, which difference
  /// successive reads of a live counter source themselves).  `t1` keys the
  /// deterministic noise; `interval_s` scales the timing-jitter term.
  Expected<double> perturb_delta(std::string_view event, int cpu, TimeNs t1,
                                 double exact_delta,
                                 double interval_s) const;

  /// Exact cumulative count (no imperfections) — ground truth hook for
  /// accuracy experiments.
  Expected<double> read_exact(std::string_view event, int cpu,
                              TimeNs t) const;

  /// Package index of a logical CPU under the prober's numbering scheme.
  [[nodiscard]] int package_of(int cpu) const;

  /// Number of logical CPUs on the machine.
  [[nodiscard]] int cpu_count() const { return machine_.total_threads(); }

 private:
  [[nodiscard]] double noise_factor(std::string_view event, int cpu,
                                    TimeNs t) const;

  topology::MachineSpec machine_;
  const workload::CounterSource* source_;  // not owned; may be nullptr (idle)
  PmuNoiseModel noise_;
  const EventTable* table_;
  CounterSchedule schedule_;
  bool configured_ = false;
};

}  // namespace pmove::pmu
