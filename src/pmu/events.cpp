#include "pmu/events.hpp"

#include <algorithm>

namespace pmove::pmu {

using workload::Quantity;

std::string_view to_string(EventScope scope) {
  switch (scope) {
    case EventScope::kThread: return "thread";
    case EventScope::kCore: return "core";
    case EventScope::kPackage: return "package";
  }
  return "thread";
}

EventTable::EventTable(PmuHardwareInfo hw, std::vector<EventDef> events)
    : hw_(std::move(hw)) {
  for (auto& e : events) {
    std::string name = e.name;
    events_.emplace(std::move(name), std::move(e));
  }
}

bool EventTable::supports(std::string_view event) const {
  return events_.find(event) != events_.end();
}

Expected<EventDef> EventTable::lookup(std::string_view event) const {
  auto it = events_.find(event);
  if (it == events_.end()) {
    return Status::not_found("PMU event not supported: " +
                             std::string(event));
  }
  return it->second;
}

std::vector<std::string> EventTable::event_names() const {
  std::vector<std::string> names;
  names.reserve(events_.size());
  for (const auto& [name, def] : events_) names.push_back(name);
  return names;
}

namespace {

// Intel core events.  FP_ARITH events count *instructions*, so packed
// variants divide the FLOP quantity by the vector width; FMA counts as one
// instruction producing two FLOPs, which the workload layer already folds
// into the FLOP totals — the instruction counts here use the non-FMA
// convention (flops / lanes), matching how likwid derives FLOPs from them.
std::vector<EventDef> intel_core_events() {
  return {
      {"UNHALTED_CORE_CYCLES", "Core cycles when not halted",
       EventScope::kThread, {{Quantity::kCycles, 1.0}}, true},
      {"UNHALTED_REFERENCE_CYCLES", "Reference cycles at TSC rate",
       EventScope::kThread, {{Quantity::kCycles, 1.0}}, true},
      {"INSTRUCTION_RETIRED", "Instructions retired",
       EventScope::kThread, {{Quantity::kInstructions, 1.0}}, true},
      {"INSTRUCTIONS_RETIRED", "Instructions retired (alias)",
       EventScope::kThread, {{Quantity::kInstructions, 1.0}}, true},
      {"UOPS_DISPATCHED", "Micro-ops dispatched",
       EventScope::kThread, {{Quantity::kUops, 1.0}}},
      {"UOPS_RETIRED", "Micro-ops retired",
       EventScope::kThread, {{Quantity::kUops, 1.0}}},

      {"FP_ARITH:SCALAR_DOUBLE", "Scalar DP FP instructions",
       EventScope::kThread, {{Quantity::kScalarFlops, 1.0}}},
      {"FP_ARITH:SCALAR_SINGLE", "Scalar SP FP instructions",
       EventScope::kThread, {}},
      {"FP_ARITH:128B_PACKED_DOUBLE", "SSE packed DP FP instructions",
       EventScope::kThread, {{Quantity::kSseFlops, 1.0 / 2}}},
      {"FP_ARITH:256B_PACKED_DOUBLE", "AVX2 packed DP FP instructions",
       EventScope::kThread, {{Quantity::kAvx2Flops, 1.0 / 4}}},
      {"FP_ARITH:512B_PACKED_DOUBLE", "AVX-512 packed DP FP instructions",
       EventScope::kThread, {{Quantity::kAvx512Flops, 1.0 / 8}}},

      {"MEM_INST_RETIRED:ALL_LOADS", "All retired load instructions",
       EventScope::kThread, {{Quantity::kLoads, 1.0}}},
      {"MEM_INST_RETIRED:ALL_STORES", "All retired store instructions",
       EventScope::kThread, {{Quantity::kStores, 1.0}}},
      {"MEM_UOPS_RETIRED:ALL_LOADS", "All retired load uops",
       EventScope::kThread, {{Quantity::kLoads, 1.0}}},
      {"MEM_UOPS_RETIRED:ALL_STORES", "All retired store uops",
       EventScope::kThread, {{Quantity::kStores, 1.0}}},

      {"L1D:REPLACEMENT", "L1D cache lines replaced",
       EventScope::kThread, {{Quantity::kL1Miss, 1.0}}},
      {"L2_RQSTS:MISS", "L2 cache misses",
       EventScope::kThread, {{Quantity::kL2Miss, 1.0}}},
      {"LONGEST_LAT_CACHE:MISS", "LLC (L3) misses",
       EventScope::kThread, {{Quantity::kL3Miss, 1.0}}},
      {"LONGEST_LAT_CACHE:REFERENCE", "LLC (L3) references",
       EventScope::kThread, {{Quantity::kL3Access, 1.0}}},
      // Note: no L3-hit event on Intel — the paper's Table I marks "L3 Hit"
      // as Not Supported for Intel Cascade Lake.

      {"BRANCH_INSTRUCTIONS_RETIRED", "Branch instructions retired",
       EventScope::kThread, {{Quantity::kBranches, 1.0}}},
      {"MISPREDICTED_BRANCH_RETIRED", "Mispredicted branches retired",
       EventScope::kThread, {{Quantity::kBranchMisses, 1.0}}},

      {"RAPL_ENERGY_PKG", "Package energy in joules (RAPL)",
       EventScope::kPackage, {{Quantity::kEnergyPkgJoules, 1.0}}},
      {"RAPL_ENERGY_DRAM", "DRAM energy in joules (RAPL)",
       EventScope::kPackage, {{Quantity::kEnergyDramJoules, 1.0}}},
  };
}

// AMD Zen3 events.  RETIRED_SSE_AVX_FLOPS:ANY counts FLOPs directly (merged
// flop event), LS_DISPATCH counts dispatched load/store ops, and the L3
// events mirror the paper's Table I (MISS + RETIRED available; Intel's
// REFERENCE missing).
std::vector<EventDef> zen3_events() {
  return {
      {"CYCLES_NOT_IN_HALT", "Core cycles not in halt",
       EventScope::kThread, {{Quantity::kCycles, 1.0}}},
      {"RETIRED_INSTRUCTIONS", "Instructions retired",
       EventScope::kThread, {{Quantity::kInstructions, 1.0}}},
      {"RETIRED_UOPS", "Micro-ops retired",
       EventScope::kThread, {{Quantity::kUops, 1.0}}},

      {"RETIRED_SSE_AVX_FLOPS:ANY", "All SSE/AVX FLOPs retired (FLOP count)",
       EventScope::kThread,
       {{Quantity::kScalarFlops, 1.0},
        {Quantity::kSseFlops, 1.0},
        {Quantity::kAvx2Flops, 1.0}}},
      {"RETIRED_SSE_AVX_FLOPS:ADD_SUB_FLOPS", "Add/sub FLOPs retired",
       EventScope::kThread, {{Quantity::kScalarFlops, 0.5},
                             {Quantity::kSseFlops, 0.5},
                             {Quantity::kAvx2Flops, 0.5}}},
      {"RETIRED_SSE_AVX_FLOPS:MULT_FLOPS", "Multiply FLOPs retired",
       EventScope::kThread, {{Quantity::kScalarFlops, 0.5},
                             {Quantity::kSseFlops, 0.5},
                             {Quantity::kAvx2Flops, 0.5}}},

      {"LS_DISPATCH:LD_DISPATCH", "Load operations dispatched",
       EventScope::kThread, {{Quantity::kLoads, 1.0}}},
      {"LS_DISPATCH:STORE_DISPATCH", "Store operations dispatched",
       EventScope::kThread, {{Quantity::kStores, 1.0}}},

      {"L1_DATA_CACHE_MISS", "L1 data cache misses",
       EventScope::kThread, {{Quantity::kL1Miss, 1.0}}},
      {"L2_CACHE_MISS", "L2 cache misses",
       EventScope::kThread, {{Quantity::kL2Miss, 1.0}}},
      {"LONGEST_LAT_CACHE:MISS", "L3 misses",
       EventScope::kThread, {{Quantity::kL3Miss, 1.0}}},
      {"LONGEST_LAT_CACHE:RETIRED", "L3 requests retired as hits",
       EventScope::kThread,
       {{Quantity::kL3Access, 1.0}, {Quantity::kL3Miss, -1.0}}},

      {"RETIRED_BRANCH_INSTRUCTIONS", "Branch instructions retired",
       EventScope::kThread, {{Quantity::kBranches, 1.0}}},
      {"RETIRED_BRANCH_INSTRUCTIONS_MISPREDICTED", "Mispredicted branches",
       EventScope::kThread, {{Quantity::kBranchMisses, 1.0}}},

      {"RAPL_ENERGY_PKG", "Package energy in joules (RAPL)",
       EventScope::kPackage, {{Quantity::kEnergyPkgJoules, 1.0}}},
      {"RAPL_ENERGY_DRAM", "DRAM energy in joules (RAPL)",
       EventScope::kPackage, {{Quantity::kEnergyDramJoules, 1.0}}},
  };
}

EventTable make_intel_table(std::string pmu_name) {
  PmuHardwareInfo hw;
  hw.programmable_counters = 4;
  hw.programmable_counters_smt_off = 8;
  hw.fixed_counters = 3;
  hw.pmu_name = std::move(pmu_name);
  return EventTable(std::move(hw), intel_core_events());
}

EventTable make_zen3_table() {
  PmuHardwareInfo hw;
  // The paper (Section IV-A): "AMD has two internal counters, one for each
  // sampling flag".
  hw.programmable_counters = 2;
  hw.programmable_counters_smt_off = 2;
  hw.fixed_counters = 0;
  hw.pmu_name = "zen3";
  return EventTable(std::move(hw), zen3_events());
}

EventTable make_generic_table() {
  PmuHardwareInfo hw;
  hw.programmable_counters = 4;
  hw.programmable_counters_smt_off = 4;
  hw.fixed_counters = 2;
  hw.pmu_name = "generic";
  // A generic machine supports the architectural subset.
  std::vector<EventDef> events = {
      {"UNHALTED_CORE_CYCLES", "Core cycles", EventScope::kThread,
       {{Quantity::kCycles, 1.0}}, true},
      {"INSTRUCTION_RETIRED", "Instructions retired", EventScope::kThread,
       {{Quantity::kInstructions, 1.0}}, true},
      {"FP_ARITH:SCALAR_DOUBLE", "Scalar DP FP instructions",
       EventScope::kThread, {{Quantity::kScalarFlops, 1.0}}},
      {"MEM_INST_RETIRED:ALL_LOADS", "Loads", EventScope::kThread,
       {{Quantity::kLoads, 1.0}}},
      {"MEM_INST_RETIRED:ALL_STORES", "Stores", EventScope::kThread,
       {{Quantity::kStores, 1.0}}},
      {"RAPL_ENERGY_PKG", "Package energy (J)", EventScope::kPackage,
       {{Quantity::kEnergyPkgJoules, 1.0}}},
  };
  return EventTable(std::move(hw), std::move(events));
}

}  // namespace

const EventTable& event_table(topology::Microarch uarch) {
  static const EventTable skx = make_intel_table("skx");
  static const EventTable icl = make_intel_table("icl");
  static const EventTable csl = make_intel_table("csl");
  static const EventTable zen3 = make_zen3_table();
  static const EventTable generic = make_generic_table();
  switch (uarch) {
    case topology::Microarch::kSkylakeX: return skx;
    case topology::Microarch::kIceLake: return icl;
    case topology::Microarch::kCascadeLake: return csl;
    case topology::Microarch::kZen3: return zen3;
    case topology::Microarch::kGeneric: return generic;
  }
  return generic;
}

std::string_view pmu_short_name(topology::Microarch uarch) {
  return event_table(uarch).hardware().pmu_name;
}

}  // namespace pmove::pmu
